#include "quadtree/quadtree.h"

#include <array>
#include <cstring>

#include "common/macros.h"
#include "geom/entry_aggregates.h"
#include "storage/page.h"

namespace sdb::quadtree {

namespace {

using core::AccessContext;
using core::BufferManager;
using core::PageHandle;
using geom::Point;
using geom::Rect;
using storage::PageHeaderView;
using storage::PageId;

constexpr size_t kHeader = PageHeaderView::kHeaderSize;

/// On-page point record.
struct PointRecord {
  double x, y;
  uint64_t id;
};
static_assert(sizeof(PointRecord) == 24);

struct MetaRecord {
  PageId root;
  uint32_t bucket_capacity;
  uint32_t max_depth;
  uint32_t pad;
  uint64_t size;
};

/// Quadrant index of a point within a cell: bit 0 = east, bit 1 = north.
int QuadrantOf(const Rect& cell, const Point& p) {
  const Point center = cell.Center();
  return (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0);
}

Rect QuadrantCell(const Rect& cell, int quadrant) {
  const Point center = cell.Center();
  const double x0 = (quadrant & 1) ? center.x : cell.xmin;
  const double x1 = (quadrant & 1) ? cell.xmax : center.x;
  const double y0 = (quadrant & 2) ? center.y : cell.ymin;
  const double y1 = (quadrant & 2) ? cell.ymax : center.y;
  return Rect(x0, y0, x1, y1);
}

std::vector<PointRecord> LoadPoints(std::span<const std::byte> page) {
  const uint16_t n = storage::ConstPageHeaderView(page.data()).entry_count();
  std::vector<PointRecord> records(n);
  if (n != 0) {  // empty vector's data() may be null; memcpy forbids that
    std::memcpy(records.data(), page.data() + kHeader,
                n * sizeof(PointRecord));
  }
  return records;
}

/// (Re)writes a leaf page. The header MBR is the node's *cell* — quadtree
/// cells are the entries the spatial criteria rank (paper Sec. 2.3) — and
/// the entry aggregates are zero (point entries are degenerate).
void WriteLeaf(PageHandle& page, const Rect& cell,
               const std::vector<PointRecord>& records, PageId overflow) {
  PageHeaderView header = page.header();
  header.set_type(storage::PageType::kData);
  header.set_level(0);
  header.set_entry_count(static_cast<uint16_t>(records.size()));
  header.set_aux(overflow);
  if (!records.empty()) {
    std::memcpy(page.bytes().data() + kHeader, records.data(),
                records.size() * sizeof(PointRecord));
  }
  geom::EntryAggregates agg;
  agg.mbr = cell;
  header.set_aggregates(agg);
  page.MarkDirty();
}

std::array<PageId, 4> LoadChildren(std::span<const std::byte> page) {
  std::array<PageId, 4> children;
  std::memcpy(children.data(), page.data() + kHeader, sizeof(children));
  return children;
}

/// Writes a directory page: four children, aggregates over the child cells.
void WriteDirectory(PageHandle& page, const Rect& cell, uint8_t level,
                    const std::array<PageId, 4>& children) {
  PageHeaderView header = page.header();
  header.set_type(storage::PageType::kDirectory);
  header.set_level(level);
  header.set_entry_count(4);
  header.set_aux(0);
  std::memcpy(page.bytes().data() + kHeader, children.data(),
              sizeof(children));
  std::vector<Rect> cells;
  for (int q = 0; q < 4; ++q) cells.push_back(QuadrantCell(cell, q));
  geom::EntryAggregates agg = geom::ComputeEntryAggregates(cells);
  agg.mbr = cell;
  header.set_aggregates(agg);
  page.MarkDirty();
}

}  // namespace

QuadTree::QuadTree(storage::DiskManager* disk, core::BufferManager* buffer,
                   const QuadTreeConfig& config)
    : disk_(disk), buffer_(buffer), config_(config) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  SDB_CHECK(&buffer->disk() == disk);
  SDB_CHECK(config.bucket_capacity >= 1 && config.max_depth >= 1);
  SDB_CHECK_MSG(kHeader + config.bucket_capacity * sizeof(PointRecord) <=
                    disk->page_size(),
                "bucket too large for the page size");

  const AccessContext ctx;
  PageHandle meta = buffer_->NewOrDie(ctx);
  meta_page_ = meta.page_id();
  meta.header().set_type(storage::PageType::kMeta);
  meta.MarkDirty();
  meta.Release();

  PageHandle root = buffer_->NewOrDie(ctx);
  root_ = root.page_id();
  WriteLeaf(root, Rect(0, 0, 1, 1), {}, storage::kInvalidPageId);
  root.Release();
  size_ = 0;
  PersistMeta();
}

QuadTree::QuadTree(storage::DiskManager* disk, core::BufferManager* buffer,
                   const QuadTreeConfig& config, storage::PageId meta_page)
    : disk_(disk), buffer_(buffer), config_(config), meta_page_(meta_page) {}

QuadTree QuadTree::Open(storage::DiskManager* disk,
                        core::BufferManager* buffer,
                        storage::PageId meta_page) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  std::span<const std::byte> page = disk->PeekPage(meta_page);
  const std::span<const std::byte> resident = buffer->Peek(meta_page);
  if (!resident.empty()) page = resident;
  SDB_CHECK_MSG(storage::ConstPageHeaderView(page.data()).type() ==
                    storage::PageType::kMeta,
                "not a quadtree meta page");
  MetaRecord record;
  std::memcpy(&record, page.data() + kHeader, sizeof(record));
  QuadTreeConfig config;
  config.bucket_capacity = record.bucket_capacity;
  config.max_depth = record.max_depth;
  QuadTree tree(disk, buffer, config, meta_page);
  tree.root_ = record.root;
  tree.size_ = record.size;
  return tree;
}

void QuadTree::PersistMeta() {
  MetaRecord record;
  record.root = root_;
  record.bucket_capacity = config_.bucket_capacity;
  record.max_depth = config_.max_depth;
  record.pad = 0;
  record.size = size_;
  const AccessContext ctx;
  PageHandle meta = buffer_->FetchOrDie(meta_page_, ctx);
  std::memcpy(meta.bytes().data() + kHeader, &record, sizeof(record));
  meta.MarkDirty();
}

void QuadTree::Insert(const Point& point, uint64_t id,
                      const AccessContext& ctx) {
  SDB_CHECK_MSG(Rect(0, 0, 1, 1).Contains(point),
                "point outside the unit square");
  while (true) {
    // Descend to the leaf for the point.
    PageId current = root_;
    Rect cell(0, 0, 1, 1);
    uint32_t depth = 0;
    while (true) {
      PageHandle page = buffer_->FetchOrDie(current, ctx);
      if (page.header().type() == storage::PageType::kDirectory) {
        const int quadrant = QuadrantOf(cell, point);
        const std::array<PageId, 4> children =
            LoadChildren(std::span<const std::byte>(page.bytes().data(),
                                                    page.bytes().size()));
        cell = QuadrantCell(cell, quadrant);
        current = children[quadrant];
        ++depth;
        continue;
      }
      // Leaf reached.
      std::vector<PointRecord> records = LoadPoints(
          std::span<const std::byte>(page.bytes().data(),
                                     page.bytes().size()));
      if (records.size() < config_.bucket_capacity) {
        records.push_back({point.x, point.y, id});
        WriteLeaf(page, cell, records, page.header().aux());
        ++size_;
        return;
      }
      if (depth >= config_.max_depth) {
        // Chain an overflow page at maximum depth.
        PageId overflow = page.header().aux();
        page.Release();
        PageId chain_tail = current;
        while (overflow != storage::kInvalidPageId) {
          PageHandle link = buffer_->FetchOrDie(overflow, ctx);
          std::vector<PointRecord> link_records = LoadPoints(
              std::span<const std::byte>(link.bytes().data(),
                                         link.bytes().size()));
          if (link_records.size() < config_.bucket_capacity) {
            link_records.push_back({point.x, point.y, id});
            WriteLeaf(link, cell, link_records, link.header().aux());
            ++size_;
            return;
          }
          chain_tail = overflow;
          overflow = link.header().aux();
        }
        PageHandle fresh = buffer_->NewOrDie(ctx);
        WriteLeaf(fresh, cell, {{point.x, point.y, id}},
                  storage::kInvalidPageId);
        const PageId fresh_id = fresh.page_id();
        fresh.Release();
        PageHandle tail = buffer_->FetchOrDie(chain_tail, ctx);
        tail.header().set_aux(fresh_id);
        tail.MarkDirty();
        ++size_;
        return;
      }
      // Split and retry from the top (the split may cascade on retry).
      page.Release();
      SplitLeaf(current, cell, depth, ctx);
      break;
    }
  }
}

void QuadTree::SplitLeaf(PageId page_id, const Rect& cell, uint32_t depth,
                         const AccessContext& ctx) {
  PageHandle page = buffer_->FetchOrDie(page_id, ctx);
  SDB_DCHECK(page.header().type() == storage::PageType::kData);
  const std::vector<PointRecord> records = LoadPoints(
      std::span<const std::byte>(page.bytes().data(), page.bytes().size()));

  std::array<std::vector<PointRecord>, 4> parts;
  for (const PointRecord& r : records) {
    parts[QuadrantOf(cell, Point{r.x, r.y})].push_back(r);
  }
  std::array<PageId, 4> children;
  for (int q = 0; q < 4; ++q) {
    PageHandle child = buffer_->NewOrDie(ctx);
    WriteLeaf(child, QuadrantCell(cell, q), parts[q],
              storage::kInvalidPageId);
    children[q] = child.page_id();
  }
  // Directory level counts distance from max depth so the priority-based
  // policies treat shallow (large-cell) pages as more valuable.
  const uint8_t level = static_cast<uint8_t>(
      std::min<uint32_t>(config_.max_depth - depth, 255));
  WriteDirectory(page, cell, level, children);
}

bool QuadTree::Delete(const Point& point, uint64_t id,
                      const AccessContext& ctx) {
  PageId current = root_;
  Rect cell(0, 0, 1, 1);
  while (true) {
    PageHandle page = buffer_->FetchOrDie(current, ctx);
    if (page.header().type() == storage::PageType::kDirectory) {
      const int quadrant = QuadrantOf(cell, point);
      const std::array<PageId, 4> children = LoadChildren(
          std::span<const std::byte>(page.bytes().data(),
                                     page.bytes().size()));
      cell = QuadrantCell(cell, quadrant);
      current = children[quadrant];
      continue;
    }
    // Leaf: search the page and its overflow chain.
    while (true) {
      std::vector<PointRecord> records = LoadPoints(
          std::span<const std::byte>(page.bytes().data(),
                                     page.bytes().size()));
      for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].id == id && records[i].x == point.x &&
            records[i].y == point.y) {
          records.erase(records.begin() + i);
          WriteLeaf(page, cell, records, page.header().aux());
          --size_;
          return true;
        }
      }
      const PageId next = page.header().aux();
      if (next == storage::kInvalidPageId) return false;
      page = buffer_->FetchOrDie(next, ctx);
    }
  }
}

void QuadTree::WindowQueryVisit(
    const Rect& window, const AccessContext& ctx,
    const std::function<void(const QuadPoint&)>& visit) const {
  struct Task {
    PageId page;
    Rect cell;
  };
  std::vector<Task> stack{{root_, Rect(0, 0, 1, 1)}};
  while (!stack.empty()) {
    const Task task = stack.back();
    stack.pop_back();
    if (!task.cell.Intersects(window)) continue;
    PageHandle page = buffer_->FetchOrDie(task.page, ctx);
    if (page.header().type() == storage::PageType::kDirectory) {
      const std::array<PageId, 4> children = LoadChildren(
          std::span<const std::byte>(page.bytes().data(),
                                     page.bytes().size()));
      for (int q = 0; q < 4; ++q) {
        stack.push_back({children[q], QuadrantCell(task.cell, q)});
      }
      continue;
    }
    // Leaf plus overflow chain.
    while (true) {
      for (const PointRecord& r : LoadPoints(std::span<const std::byte>(
               page.bytes().data(), page.bytes().size()))) {
        const Point p{r.x, r.y};
        if (window.Contains(p)) visit(QuadPoint{p, r.id});
      }
      const PageId next = page.header().aux();
      if (next == storage::kInvalidPageId) break;
      page = buffer_->FetchOrDie(next, ctx);
    }
  }
}

std::vector<QuadPoint> QuadTree::WindowQuery(
    const Rect& window, const AccessContext& ctx) const {
  std::vector<QuadPoint> out;
  WindowQueryVisit(window, ctx,
                   [&out](const QuadPoint& p) { out.push_back(p); });
  return out;
}

// ---------------------------------------------------------------------------
// Offline inspection
// ---------------------------------------------------------------------------

namespace {

std::span<const std::byte> PeekImage(const storage::DiskManager& disk,
                                     const BufferManager* buffer, PageId id) {
  if (buffer != nullptr) {
    const std::span<const std::byte> resident = buffer->Peek(id);
    if (!resident.empty()) return resident;
  }
  return disk.PeekPage(id);
}

struct QuadWalk {
  uint64_t points = 0;
  uint32_t directories = 0;
  uint32_t leaves = 0;
  uint32_t max_depth_seen = 0;
  std::string error;
};

void WalkQuad(const storage::DiskManager& disk, const BufferManager* buffer,
              const QuadTreeConfig& config, PageId id, const Rect& cell,
              uint32_t depth, QuadWalk* out) {
  if (!out->error.empty()) return;
  auto fail = [&](const std::string& what) {
    out->error = "quad-page " + std::to_string(id) + ": " + what;
  };
  out->max_depth_seen = std::max(out->max_depth_seen, depth);
  if (depth > config.max_depth) {
    fail("deeper than max_depth");
    return;
  }
  const std::span<const std::byte> raw = PeekImage(disk, buffer, id);
  const storage::ConstPageHeaderView header(raw.data());
  if (!(header.mbr() == cell)) {
    fail("header MBR differs from the node cell");
    return;
  }
  if (header.type() == storage::PageType::kDirectory) {
    ++out->directories;
    if (header.entry_count() != 4) {
      fail("directory without 4 children");
      return;
    }
    const std::array<PageId, 4> children = LoadChildren(raw);
    for (int q = 0; q < 4; ++q) {
      WalkQuad(disk, buffer, config, children[q], QuadrantCell(cell, q),
               depth + 1, out);
      if (!out->error.empty()) return;
    }
    return;
  }
  if (header.type() != storage::PageType::kData) {
    fail("unexpected page type");
    return;
  }
  // Leaf and its overflow chain.
  PageId link = id;
  while (link != storage::kInvalidPageId) {
    const std::span<const std::byte> link_raw =
        PeekImage(disk, buffer, link);
    const storage::ConstPageHeaderView link_header(link_raw.data());
    if (!(link_header.mbr() == cell)) {
      fail("overflow page cell mismatch");
      return;
    }
    const std::vector<PointRecord> records = LoadPoints(link_raw);
    if (records.size() > config.bucket_capacity) {
      fail("bucket over capacity");
      return;
    }
    if (link != id && depth < config.max_depth) {
      fail("overflow chain below max depth");
      return;
    }
    for (const PointRecord& r : records) {
      if (!cell.Contains(Point{r.x, r.y})) {
        fail("point outside its cell");
        return;
      }
    }
    out->points += records.size();
    ++out->leaves;
    link = link_header.aux();
  }
}

}  // namespace

std::string QuadTree::Validate() const {
  QuadWalk walk;
  WalkQuad(*disk_, buffer_, config_, root_, Rect(0, 0, 1, 1), 0, &walk);
  if (!walk.error.empty()) return walk.error;
  if (walk.points != size_) {
    return "point count mismatch: tree holds " +
           std::to_string(walk.points) + ", size() reports " +
           std::to_string(size_);
  }
  return "";
}

QuadTreeStats QuadTree::ComputeStats() const {
  QuadWalk walk;
  WalkQuad(*disk_, buffer_, config_, root_, Rect(0, 0, 1, 1), 0, &walk);
  QuadTreeStats stats;
  stats.point_count = walk.points;
  stats.directory_pages = walk.directories;
  stats.leaf_pages = walk.leaves;
  stats.max_depth_used = walk.max_depth_seen;
  return stats;
}

}  // namespace sdb::quadtree
