#ifndef SPATIALBUFFER_QUADTREE_QUADTREE_H_
#define SPATIALBUFFER_QUADTREE_QUADTREE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/access_context.h"
#include "core/buffer_manager.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "storage/disk_manager.h"

namespace sdb::quadtree {

/// Structural parameters of the paged bucket PR quadtree.
struct QuadTreeConfig {
  /// Points per leaf page before the cell splits into four quadrants.
  uint32_t bucket_capacity = 64;
  /// Maximum subdivision depth; deeper overflow goes into chained overflow
  /// pages (handles duplicate and near-duplicate positions).
  uint32_t max_depth = 16;
};

struct QuadTreeStats {
  uint64_t point_count = 0;
  uint32_t directory_pages = 0;
  uint32_t leaf_pages = 0;      ///< including overflow-chain pages
  uint32_t max_depth_used = 0;

  uint32_t total_pages() const { return directory_pages + leaf_pages; }
};

/// One stored point feature.
struct QuadPoint {
  geom::Point point;
  uint64_t id = 0;
};

/// A paged bucket PR quadtree over the unit square — the third spatial
/// access method of this library (the paper lists quadtrees alongside
/// R-trees and z-value B-trees as SAMs whose page entries define the
/// spatial replacement criteria). Each node is one page:
///
///  * directory pages hold the four child page ids; their header MBR is the
///    node's quadrant *cell*, and the entry aggregates are computed over
///    the four child cells — "the quadtree cells match these entries";
///  * leaf pages hold a bucket of points; a full leaf at depth < max_depth
///    splits into four quadrant leaves, a full leaf at max depth grows a
///    chained overflow page.
///
/// Because quadrant cells halve per level, densely populated regions end up
/// with *small* cells — the same property that makes the paper's
/// intensified query sets adversarial for spatial replacement.
class QuadTree {
 public:
  QuadTree(storage::DiskManager* disk, core::BufferManager* buffer,
           const QuadTreeConfig& config = QuadTreeConfig{});

  static QuadTree Open(storage::DiskManager* disk,
                       core::BufferManager* buffer,
                       storage::PageId meta_page);

  QuadTree(QuadTree&&) = default;
  QuadTree& operator=(QuadTree&&) = delete;
  QuadTree(const QuadTree&) = delete;
  QuadTree& operator=(const QuadTree&) = delete;

  void set_buffer(core::BufferManager* buffer) { buffer_ = buffer; }

  /// Inserts a point (must lie in the unit square).
  void Insert(const geom::Point& point, uint64_t id,
              const core::AccessContext& ctx);

  /// Removes one record with this position and id; false if absent. Leaves
  /// are not re-merged (lazy deletion).
  bool Delete(const geom::Point& point, uint64_t id,
              const core::AccessContext& ctx);

  void WindowQueryVisit(
      const geom::Rect& window, const core::AccessContext& ctx,
      const std::function<void(const QuadPoint&)>& visit) const;

  std::vector<QuadPoint> WindowQuery(const geom::Rect& window,
                                     const core::AccessContext& ctx) const;

  void PersistMeta();

  /// Offline structural check; empty string when valid.
  std::string Validate() const;

  QuadTreeStats ComputeStats() const;

  storage::PageId meta_page() const { return meta_page_; }
  storage::PageId root() const { return root_; }
  uint64_t size() const { return size_; }
  const QuadTreeConfig& config() const { return config_; }

 private:
  QuadTree(storage::DiskManager* disk, core::BufferManager* buffer,
           const QuadTreeConfig& config, storage::PageId meta_page);

  /// Splits the full leaf `page_id` (cell `cell`, depth `depth`) into a
  /// directory with four leaf children, redistributing its points.
  void SplitLeaf(storage::PageId page_id, const geom::Rect& cell,
                 uint32_t depth, const core::AccessContext& ctx);

  storage::DiskManager* disk_;
  core::BufferManager* buffer_;
  QuadTreeConfig config_;
  storage::PageId meta_page_ = storage::kInvalidPageId;
  storage::PageId root_ = storage::kInvalidPageId;
  uint64_t size_ = 0;
};

}  // namespace sdb::quadtree

#endif  // SPATIALBUFFER_QUADTREE_QUADTREE_H_
