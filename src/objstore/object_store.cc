#include "objstore/object_store.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "geom/entry_aggregates.h"

namespace sdb::objstore {

namespace {

using storage::PageHeaderView;

// Object encoding: u64 id, 4 x f64 mbr, u32 vertex count, then the
// vertices as pairs of f64.
constexpr size_t kObjectHeaderSize = 8 + 32 + 4;
// One slot directory entry: u16 offset, u16 length.
constexpr size_t kSlotSize = 4;

size_t SlotArrayOffset(size_t page_size, uint16_t slot) {
  return page_size - kSlotSize * (static_cast<size_t>(slot) + 1);
}

void WriteSlot(std::span<std::byte> page, uint16_t slot, uint16_t offset,
               uint16_t length) {
  std::byte* p = page.data() + SlotArrayOffset(page.size(), slot);
  std::memcpy(p, &offset, 2);
  std::memcpy(p + 2, &length, 2);
}

void ReadSlot(std::span<const std::byte> page, uint16_t slot,
              uint16_t* offset, uint16_t* length) {
  const std::byte* p = page.data() + SlotArrayOffset(page.size(), slot);
  std::memcpy(offset, p, 2);
  std::memcpy(length, p + 2, 2);
}

void EncodeObject(const ExactObject& object, std::byte* out) {
  std::memcpy(out, &object.id, 8);
  out += 8;
  const double mbr[4] = {object.mbr.xmin, object.mbr.ymin, object.mbr.xmax,
                         object.mbr.ymax};
  std::memcpy(out, mbr, 32);
  out += 32;
  const uint32_t n = static_cast<uint32_t>(object.vertices.size());
  std::memcpy(out, &n, 4);
  out += 4;
  for (const geom::Point& v : object.vertices) {
    std::memcpy(out, &v.x, 8);
    std::memcpy(out + 8, &v.y, 8);
    out += 16;
  }
}

ExactObject DecodeObject(const std::byte* in) {
  ExactObject object;
  std::memcpy(&object.id, in, 8);
  in += 8;
  double mbr[4];
  std::memcpy(mbr, in, 32);
  in += 32;
  object.mbr = geom::Rect(mbr[0], mbr[1], mbr[2], mbr[3]);
  uint32_t n = 0;
  std::memcpy(&n, in, 4);
  in += 4;
  object.vertices.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(&object.vertices[i].x, in, 8);
    std::memcpy(&object.vertices[i].y, in + 8, 8);
    in += 16;
  }
  return object;
}

/// Recomputes the page header aggregates from the MBRs of all objects on
/// the page, so replacement policies can rank object pages spatially.
void RefreshObjectPageAggregates(std::span<std::byte> page, uint16_t slots) {
  std::vector<geom::Rect> rects;
  rects.reserve(slots);
  for (uint16_t s = 0; s < slots; ++s) {
    uint16_t offset = 0, length = 0;
    ReadSlot(page, s, &offset, &length);
    double mbr[4];
    std::memcpy(mbr, page.data() + offset + 8, 32);
    rects.emplace_back(mbr[0], mbr[1], mbr[2], mbr[3]);
  }
  PageHeaderView header(page.data());
  header.set_entry_count(slots);
  header.set_aggregates(geom::ComputeEntryAggregates(rects));
}

/// True if the segment a-b intersects the (closed) rectangle, via
/// Liang-Barsky parametric clipping.
bool SegmentIntersectsRect(const geom::Point& a, const geom::Point& b,
                           const geom::Rect& r) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  double t0 = 0.0, t1 = 1.0;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - r.xmin, r.xmax - a.x, a.y - r.ymin,
                       r.ymax - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // parallel and outside
    } else {
      const double t = q[i] / p[i];
      if (p[i] < 0.0) {
        t0 = std::max(t0, t);
      } else {
        t1 = std::min(t1, t);
      }
      if (t0 > t1) return false;
    }
  }
  return true;
}

}  // namespace

ObjectStore::ObjectStore(storage::DiskManager* disk,
                         core::BufferManager* buffer)
    : disk_(disk), buffer_(buffer) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  SDB_CHECK(&buffer->disk() == disk);
}

size_t ObjectStore::EncodedSize(const ExactObject& object) {
  return kObjectHeaderSize + 16 * object.vertices.size();
}

rtree::ObjectRef ObjectStore::Append(const ExactObject& object,
                                     const core::AccessContext& ctx) {
  const size_t need = EncodedSize(object);
  const size_t page_size = disk_->page_size();
  SDB_CHECK_MSG(
      need + kSlotSize + PageHeaderView::kHeaderSize <= page_size,
      "object too large for one page");

  const bool fits =
      open_page_ != storage::kInvalidPageId &&
      open_data_end_ + need + kSlotSize * (open_slots_ + 1u) <= page_size;
  if (!fits) {
    core::PageHandle page = buffer_->NewOrDie(ctx);
    open_page_ = page.page_id();
    open_data_end_ = PageHeaderView::kHeaderSize;
    open_slots_ = 0;
    PageHeaderView header = page.header();
    header.set_type(storage::PageType::kObject);
    header.set_level(0);
    page.MarkDirty();
    ++page_counter_;
  }

  core::PageHandle page = buffer_->FetchOrDie(open_page_, ctx);
  std::span<std::byte> bytes = page.bytes();
  EncodeObject(object, bytes.data() + open_data_end_);
  WriteSlot(bytes, open_slots_, static_cast<uint16_t>(open_data_end_),
            static_cast<uint16_t>(need));
  const rtree::ObjectRef ref{open_page_, open_slots_};
  open_data_end_ += need;
  ++open_slots_;
  RefreshObjectPageAggregates(bytes, open_slots_);
  page.MarkDirty();
  return ref;
}

std::optional<ExactObject> ObjectStore::Get(
    rtree::ObjectRef ref, const core::AccessContext& ctx) const {
  if (ref.page == storage::kInvalidPageId ||
      ref.page >= disk_->page_count()) {
    return std::nullopt;
  }
  core::PageHandle page = buffer_->FetchOrDie(ref.page, ctx);
  const std::span<const std::byte> bytes{page.bytes().data(),
                                         page.bytes().size()};
  storage::ConstPageHeaderView header(bytes.data());
  if (header.type() != storage::PageType::kObject ||
      ref.slot >= header.entry_count()) {
    return std::nullopt;
  }
  uint16_t offset = 0, length = 0;
  ReadSlot(bytes, ref.slot, &offset, &length);
  return DecodeObject(bytes.data() + offset);
}

bool ObjectStore::GeometryIntersectsWindow(const ExactObject& object,
                                           const geom::Rect& window) {
  if (object.vertices.empty()) {
    return object.mbr.Intersects(window);
  }
  if (object.vertices.size() == 1) {
    return window.Contains(object.vertices[0]);
  }
  for (size_t i = 0; i + 1 < object.vertices.size(); ++i) {
    if (SegmentIntersectsRect(object.vertices[i], object.vertices[i + 1],
                              window)) {
      return true;
    }
  }
  return false;
}

bool ObjectStore::RefineWindow(rtree::ObjectRef ref, const geom::Rect& window,
                               const core::AccessContext& ctx) const {
  const std::optional<ExactObject> object = Get(ref, ctx);
  if (!object) return false;
  return GeometryIntersectsWindow(*object, window);
}

}  // namespace sdb::objstore
