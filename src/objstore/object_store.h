#ifndef SPATIALBUFFER_OBJSTORE_OBJECT_STORE_H_
#define SPATIALBUFFER_OBJSTORE_OBJECT_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/buffer_manager.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/node_view.h"

namespace sdb::objstore {

/// Exact representation of one spatial object: its MBR plus the vertex
/// sequence (a point for |vertices| == 1, otherwise a polyline/polygon
/// outline).
struct ExactObject {
  uint64_t id = 0;
  geom::Rect mbr;
  std::vector<geom::Point> vertices;
};

/// Storage for the exact object geometries, kept in *object pages* separate
/// from the spatial access method (paper Sec. 2.1 / Fig. 1; following the
/// paper's setup, object pages live in their own file and their own buffer).
/// Data-page entries of the R*-tree reference objects by (page, slot).
///
/// Pages are slotted: objects are packed front-to-back, the slot directory
/// (offset, length) grows from the back. The standard page header carries
/// the spatial aggregates over the stored objects' MBRs, so object pages
/// participate in spatial replacement criteria like any other page.
class ObjectStore {
 public:
  /// The store appends through `buffer`, which must wrap `disk`.
  ObjectStore(storage::DiskManager* disk, core::BufferManager* buffer);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Swaps the buffer used for reads (e.g. a fresh one per experiment).
  void set_buffer(core::BufferManager* buffer) { buffer_ = buffer; }

  /// Stores an object and returns its locator. The encoded object must fit
  /// in one page.
  rtree::ObjectRef Append(const ExactObject& object,
                          const core::AccessContext& ctx);

  /// Loads an object; nullopt if the locator is invalid.
  std::optional<ExactObject> Get(rtree::ObjectRef ref,
                                 const core::AccessContext& ctx) const;

  /// Refinement step of window-query processing: loads the exact geometry
  /// and tests it against the window (point containment for point objects,
  /// segment/window intersection for polylines).
  bool RefineWindow(rtree::ObjectRef ref, const geom::Rect& window,
                    const core::AccessContext& ctx) const;

  /// Number of object pages written so far.
  uint32_t page_count() const { return page_counter_; }

  /// Encoded size of an object in bytes (for capacity planning).
  static size_t EncodedSize(const ExactObject& object);

  /// Exact geometry/window test used by RefineWindow; exposed for testing.
  static bool GeometryIntersectsWindow(const ExactObject& object,
                                       const geom::Rect& window);

 private:
  storage::DiskManager* disk_;
  core::BufferManager* buffer_;
  storage::PageId open_page_ = storage::kInvalidPageId;
  size_t open_data_end_ = 0;    ///< byte offset of free space start
  uint16_t open_slots_ = 0;     ///< slots used on the open page
  uint32_t page_counter_ = 0;
};

}  // namespace sdb::objstore

#endif  // SPATIALBUFFER_OBJSTORE_OBJECT_STORE_H_
