#ifndef SPATIALBUFFER_COMMON_MACROS_H_
#define SPATIALBUFFER_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// SDB_CHECK: always-on invariant check. Violations indicate programming
/// errors (corrupted state, broken caller contract) and abort the process
/// with a source location. Used on cold paths and at module boundaries.
#define SDB_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SDB_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// SDB_CHECK_MSG: SDB_CHECK with an explanatory message.
#define SDB_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SDB_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// SDB_DCHECK: debug-only check for hot paths. Compiled out under NDEBUG.
#ifdef NDEBUG
#define SDB_DCHECK(cond) ((void)0)
#else
#define SDB_DCHECK(cond) SDB_CHECK(cond)
#endif

#endif  // SPATIALBUFFER_COMMON_MACROS_H_
