#ifndef SPATIALBUFFER_COMMON_RANDOM_H_
#define SPATIALBUFFER_COMMON_RANDOM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/macros.h"

namespace sdb {

/// Deterministic 64-bit PRNG (SplitMix64). Small, fast, and fully
/// reproducible across platforms — every generator in this project takes an
/// explicit seed so experiments can be replayed bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    SDB_DCHECK(n > 0);
    // Lemire's unbiased bounded generation (rejection on the short range).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0ULL - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Approximately standard-normal variate (Irwin–Hall sum of 12 uniforms).
  /// Adequate for synthetic spatial clustering; avoids libm dependencies in
  /// the hot generation loop.
  double NextGaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return s - 6.0;
  }

  /// Derives an independent child generator; useful for giving each
  /// generated entity its own stream.
  Rng Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

/// Samples indices 0..n-1 with probability proportional to precomputed
/// weights. Built once (O(n)), sampled in O(log n) via a cumulative table.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights) {
    SDB_CHECK(!weights.empty());
    cumulative_.reserve(weights.size());
    double total = 0.0;
    for (double w : weights) {
      SDB_CHECK(w >= 0.0);
      total += w;
      cumulative_.push_back(total);
    }
    SDB_CHECK(total > 0.0);
  }

  /// Draws one index.
  size_t Sample(Rng& rng) const {
    const double target = rng.NextDouble() * cumulative_.back();
    // Binary search for the first cumulative weight > target.
    size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] > target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  double total_weight() const { return cumulative_.back(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace sdb

#endif  // SPATIALBUFFER_COMMON_RANDOM_H_
