#ifndef SPATIALBUFFER_CORE_SPATIAL_CRITERION_H_
#define SPATIALBUFFER_CORE_SPATIAL_CRITERION_H_

#include <optional>
#include <string_view>

#include "storage/page.h"

namespace sdb::core {

/// The five spatial page-replacement criteria of the paper (Sec. 2.3),
/// derived from the R*-tree optimization goals O1–O4. A page whose criterion
/// value is *largest* should stay in the buffer longest; the page with the
/// *smallest* value is the eviction victim.
enum class SpatialCriterion {
  kArea,          ///< A: area of the page MBR (optimization goal O1)
  kEntryArea,     ///< EA: Σ area of entry MBRs (O1 + O4, not normalized)
  kMargin,        ///< M: margin of the page MBR (O3)
  kEntryMargin,   ///< EM: Σ margin of entry MBRs (O3 + O4)
  kEntryOverlap,  ///< EO: total pairwise overlap of entry MBRs (O2)
};

/// spatialCrit(p) for the given criterion, evaluated on a page's header
/// metadata.
double EvaluateCriterion(SpatialCriterion crit, const storage::PageMeta& meta);

/// Short name as used in the paper: "A", "EA", "M", "EM", "EO".
std::string_view CriterionName(SpatialCriterion crit);

/// Inverse of CriterionName; nullopt for unknown names.
std::optional<SpatialCriterion> ParseCriterion(std::string_view name);

/// All criteria, for sweeps.
inline constexpr SpatialCriterion kAllCriteria[] = {
    SpatialCriterion::kArea, SpatialCriterion::kEntryArea,
    SpatialCriterion::kMargin, SpatialCriterion::kEntryMargin,
    SpatialCriterion::kEntryOverlap,
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_SPATIAL_CRITERION_H_
