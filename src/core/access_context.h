#ifndef SPATIALBUFFER_CORE_ACCESS_CONTEXT_H_
#define SPATIALBUFFER_CORE_ACCESS_CONTEXT_H_

#include <cstdint>

namespace sdb::obs {
struct SpanContext;
}  // namespace sdb::obs

namespace sdb::core {

/// Context of one page request. The query id drives the correlated-reference
/// detection of LRU-K: following the paper, "two page accesses will be
/// regarded as correlated if they belong to the same query".
struct AccessContext {
  /// Identifier of the query (or other operation, e.g. an insertion) issuing
  /// the request. Queries must use distinct ids; `kNoQuery` marks accesses
  /// outside any query (bulk build, maintenance).
  uint64_t query_id = kNoQuery;

  /// Tracing context of the query, when it was sampled for span tracing
  /// (obs/trace.h); null — the overwhelmingly common case — means detached,
  /// and every instrumentation site reduces to one pointer compare.
  obs::SpanContext* span = nullptr;

  static constexpr uint64_t kNoQuery = 0;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_ACCESS_CONTEXT_H_
