#ifndef SPATIALBUFFER_CORE_POLICY_DOMAIN_H_
#define SPATIALBUFFER_CORE_POLICY_DOMAIN_H_

#include <string>

#include "core/replacement_policy.h"

namespace sdb::core {

/// Domain separation (after Reiter's DBMIN-era scheme, described in the
/// Härder/Rahm survey the paper cites as [6]): the buffer is logically
/// partitioned by page *domain* — here directory pages vs. everything else —
/// and each domain runs its own LRU under a quota. Unlike LRU-T (which
/// always sacrifices the lower category first), the directory is protected
/// only up to its quota, so a directory-heavy working set cannot starve the
/// data pages.
///
/// Victim selection: if the directory domain exceeds its quota, evict its
/// LRU page; otherwise evict the LRU non-directory page (falling back to
/// the other domain when one is empty or fully pinned).
class DomainPolicy : public PolicyBase {
 public:
  /// `directory_quota`: maximum share of the buffer the directory domain
  /// may hold before it has to evict from itself.
  explicit DomainPolicy(double directory_quota = 0.1);

  std::string_view name() const override { return name_; }
  double directory_quota() const { return quota_; }

  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

 private:
  /// LRU-most evictable frame, restricted to (non-)directory pages.
  std::optional<FrameId> DomainVictim(bool directory) const;

  const double quota_;
  std::string name_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_DOMAIN_H_
