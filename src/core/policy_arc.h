#ifndef SPATIALBUFFER_CORE_POLICY_ARC_H_
#define SPATIALBUFFER_CORE_POLICY_ARC_H_

#include <deque>
#include <unordered_set>
#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// ARC — the Adaptive Replacement Cache [Megiddo & Modha, FAST 2003].
///
/// Included as the classic *self-tuning* comparison point for the paper's
/// adaptable spatial buffer: ARC balances recency against frequency by
/// moving a target boundary `p` between two resident lists, learning from
/// ghost hits — structurally the same feedback idea as the ASB's overflow
/// buffer, but without any spatial knowledge. (ARC postdates the paper by a
/// year; it is an extension here, not one of the paper's contenders.)
///
/// Lists: T1 holds pages seen once recently, T2 pages seen at least twice;
/// B1/B2 are their ghost extensions (page ids only). A hit in B1 grows the
/// recency target p, a hit in B2 shrinks it. Victims come from T1 while
/// |T1| exceeds p, otherwise from T2.
class ArcPolicy : public PolicyBase {
 public:
  ArcPolicy() = default;

  std::string_view name() const override { return "ARC"; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

  /// Current recency target p (in frames), the self-tuned knob.
  size_t target_t1() const { return static_cast<size_t>(p_); }
  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t ghost_size() const { return b1_set_.size() + b2_set_.size(); }
  bool InT2(FrameId f) const { return in_t2_[f]; }

 private:
  /// Removes a frame from whichever resident list holds it.
  void RemoveResident(FrameId f);

  /// LRU-most evictable frame of a list, or nullopt.
  std::optional<FrameId> ListVictim(const std::deque<FrameId>& list) const;

  void TrimGhosts();

  int64_t p_ = 0;                       // target size of T1
  std::deque<FrameId> t1_, t2_;         // LRU at front, MRU at back
  std::vector<char> in_t2_;             // frame -> resident in T2?
  std::deque<storage::PageId> b1_, b2_;  // ghost lists, LRU at front
  std::unordered_set<storage::PageId> b1_set_, b2_set_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_ARC_H_
