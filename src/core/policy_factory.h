#ifndef SPATIALBUFFER_CORE_POLICY_FACTORY_H_
#define SPATIALBUFFER_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// Creates a replacement policy from a textual specification — the single
/// entry point used by the experiment harness, benches, and example CLIs.
///
/// Accepted specs:
///   "LRU" | "FIFO" | "CLOCK" | "LRU-T" | "LRU-P"
///   "LRU-<k>"            e.g. "LRU-2", "LRU-3", "LRU-5"
///   "A" | "EA" | "M" | "EM" | "EO"            pure spatial policies
///   "SLRU[:<crit>][:<fraction>]"              e.g. "SLRU:A:0.25"
///   "ASB[:<crit>][:<overflow>[:<init>[:<step>]]]"
///                                             e.g. "ASB:A:0.2:0.25:0.01"
/// Returns nullptr for an unrecognized spec.
std::unique_ptr<ReplacementPolicy> CreatePolicy(std::string_view spec);

/// The specs of all predefined policies, for help texts and sweeps.
std::vector<std::string> KnownPolicySpecs();

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_FACTORY_H_
