#ifndef SPATIALBUFFER_CORE_POLICY_LRU_K_H_
#define SPATIALBUFFER_CORE_POLICY_LRU_K_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// How two references to the same page are recognized as *correlated*
/// (and hence collapsed into one HIST entry).
enum class CorrelationMode {
  /// The EDBT paper's definition: same query id (footnote in Sec. 2.2).
  kByQuery,
  /// O'Neil et al.'s original Correlated Reference Period: references
  /// within a fixed span of logical time are correlated.
  kByPeriod,
};

/// The LRU-K page-replacement algorithm of O'Neil, O'Neil & Weikum, as
/// described in paper Sec. 2.2.
///
/// For every page p the policy records HIST(p): the time stamps of the K
/// most recent *uncorrelated* references (HIST(p,1) is the latest). Two
/// references are correlated iff they belong to the same query (the
/// default; a time-window mode is available for comparison). On a hit:
///  * correlated with the previous reference — HIST(p,1) is overwritten;
///  * uncorrelated — the current time is pushed as the new HIST(p,1).
/// On a miss the victim is, among buffered pages whose latest reference is
/// not correlated with the current access, the page q with the oldest
/// HIST(q,K); pages with fewer than K recorded references count as infinitely
/// old and lose first (ties fall back to HIST(q,1), i.e. plain LRU).
///
/// Faithful to the paper, the history of a page *survives eviction* and is
/// restored when the page is reloaded. This is LRU-K's stated memory
/// disadvantage; `retained_history_size()` exposes how many such records
/// exist so experiments can report it.
class LruKPolicy : public PolicyBase {
 public:
  /// `k` >= 1. LRU-1 with per-query correlation is LRU with correlated
  /// accesses collapsed; the paper uses K in {2, 3, 5}. With kByPeriod,
  /// `correlation_period` is the span (in logical accesses) within which
  /// two references count as one.
  explicit LruKPolicy(int k,
                      CorrelationMode mode = CorrelationMode::kByQuery,
                      uint64_t correlation_period = 0);

  CorrelationMode correlation_mode() const { return mode_; }
  uint64_t correlation_period() const { return period_; }

  std::string_view name() const override { return name_; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

  int k() const { return k_; }

  /// Number of history records kept for pages that are no longer buffered.
  size_t retained_history_size() const { return retained_.size(); }

  /// HIST(p,i) for a resident frame, 1-based like the paper; 0 if the i-th
  /// reference does not exist. Exposed for testing.
  uint64_t HistOf(FrameId frame, int i) const;

 private:
  /// Reference history of one page, most recent first, at most K entries.
  struct History {
    std::vector<uint64_t> stamps;

    uint64_t Backward(int k) const {
      return static_cast<size_t>(k) <= stamps.size() ? stamps[k - 1] : 0;
    }
  };

  /// Correlation test between the current access (query `now_query`,
  /// logical time `now_time`) and a page's most recent reference.
  bool Correlated(uint64_t now_query, uint64_t now_time,
                  uint64_t last_query, uint64_t last_time) const {
    if (mode_ == CorrelationMode::kByQuery) {
      return now_query != AccessContext::kNoQuery && now_query == last_query;
    }
    return now_time - last_time <= period_;
  }

  const int k_;
  const CorrelationMode mode_;
  const uint64_t period_;
  std::string name_;
  std::vector<History> frame_hist_;                       // per frame
  std::unordered_map<storage::PageId, History> retained_; // evicted pages
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_LRU_K_H_
