#include "core/spatial_criterion.h"

#include "common/macros.h"

namespace sdb::core {

double EvaluateCriterion(SpatialCriterion crit,
                         const storage::PageMeta& meta) {
  switch (crit) {
    case SpatialCriterion::kArea:
      return meta.mbr.Area();
    case SpatialCriterion::kEntryArea:
      return meta.sum_entry_area;
    case SpatialCriterion::kMargin:
      return meta.mbr.Margin();
    case SpatialCriterion::kEntryMargin:
      return meta.sum_entry_margin;
    case SpatialCriterion::kEntryOverlap:
      return meta.entry_overlap;
  }
  SDB_CHECK_MSG(false, "unknown criterion");
  return 0.0;
}

std::string_view CriterionName(SpatialCriterion crit) {
  switch (crit) {
    case SpatialCriterion::kArea:
      return "A";
    case SpatialCriterion::kEntryArea:
      return "EA";
    case SpatialCriterion::kMargin:
      return "M";
    case SpatialCriterion::kEntryMargin:
      return "EM";
    case SpatialCriterion::kEntryOverlap:
      return "EO";
  }
  return "?";
}

std::optional<SpatialCriterion> ParseCriterion(std::string_view name) {
  for (SpatialCriterion c : kAllCriteria) {
    if (CriterionName(c) == name) return c;
  }
  return std::nullopt;
}

}  // namespace sdb::core
