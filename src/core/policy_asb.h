#ifndef SPATIALBUFFER_CORE_POLICY_ASB_H_
#define SPATIALBUFFER_CORE_POLICY_ASB_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/policy_slru.h"
#include "core/replacement_policy.h"
#include "core/spatial_criterion.h"

namespace sdb::core {

class AsbSharedTuning;

/// Tuning knobs of the adaptable spatial buffer. Defaults match the paper's
/// experiments (Sec. 4.3): overflow buffer = 20% of the complete buffer,
/// initial candidate set = 25% of the remaining (main) buffer, adaptation
/// step = 1% of the main buffer.
struct AsbConfig {
  SpatialCriterion criterion = SpatialCriterion::kArea;
  double overflow_fraction = 0.20;
  double initial_candidate_fraction = 0.25;
  double step_fraction = 0.01;
};

/// ASB — the *adaptable spatial buffer* (paper Sec. 4), a robust and
/// self-tuning combination of LRU and a spatial replacement criterion.
///
/// The buffer is divided into a *main* section and a FIFO *overflow* section
/// (a labelling of frames; overflow pages are still resident, so a request
/// for one is a buffer hit). Eviction takes the head of the overflow FIFO;
/// the page demoted from the main section into the overflow FIFO is chosen
/// by the combined rule of Sec. 4.1: the spatially worst page among the `c`
/// least-recently-used main pages.
///
/// `c` — the candidate-set size — is the self-tuning knob. When a request
/// hits a page p in the overflow section, its eviction from the main section
/// was evidently premature, and p tells us which criterion misjudged it
/// (Sec. 4.2):
///  * more overflow pages beat p spatially than beat it temporally — the
///    spatial criterion would have sacrificed p even though it was needed,
///    so LRU is the better judge: c decreases;
///  * fewer — the spatial criterion ranks p above its peers, so it would
///    have kept p: c increases;
///  * equal — c is unchanged.
/// Unlike LRU-K, no information is kept about pages outside the buffer, so
/// the memory requirements never exceed the buffer itself.
class AsbPolicy : public PolicyBase {
 public:
  explicit AsbPolicy(const AsbConfig& config = AsbConfig{});

  std::string_view name() const override { return "ASB"; }
  const AsbConfig& config() const { return config_; }

  /// Attaches cross-shard candidate-set coordination (set by the sharded
  /// buffer service on every shard's policy; must be called before Bind).
  /// With a shared tuning attached, adaptation steps are applied to the
  /// shared value with a clamped CAS and the published value is re-read at
  /// the start of every demotion scan; without one (the default) the policy
  /// tunes its private `c` exactly as in the paper.
  void set_shared_tuning(AsbSharedTuning* shared) { shared_ = shared; }
  AsbSharedTuning* shared_tuning() const { return shared_; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void SetCollector(obs::Collector* collector) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

  /// Current candidate-set size c (the Fig. 14 trace variable).
  size_t candidate_size() const { return static_cast<size_t>(candidate_); }
  /// Capacity of the main section (frames − overflow section).
  size_t main_capacity() const { return main_target_; }
  /// Capacity of the overflow section.
  size_t overflow_capacity() const { return overflow_target_; }
  /// Pages currently labelled overflow.
  size_t overflow_size() const { return fifo_.size(); }
  /// Adaptation step (in frames).
  size_t step() const { return static_cast<size_t>(step_); }

  /// Counters for analysis/testing.
  uint64_t overflow_hits() const { return overflow_hits_; }
  uint64_t candidate_increases() const { return increases_; }
  uint64_t candidate_decreases() const { return decreases_; }

 private:
  enum class Section : uint8_t { kNone, kMain, kOverflow };

  double CritOf(FrameId f) const {
    return CachedCriterion(config_.criterion, f);
  }

  /// Adjusts c based on how page p (still labelled overflow, with its
  /// pre-access state) compares against the other overflow pages. Emits a
  /// kAsbAdapt event carrying the full decision (mistake attribution and the
  /// resulting c) when a collector is attached.
  void Adapt(FrameId p, const AccessContext& ctx);

  /// Adopts the globally-published candidate size, clamped to this shard's
  /// main capacity. No-op without a shared tuning.
  void ReloadSharedCandidate();

  /// Moves an overflow page back into the main section.
  void Promote(FrameId f);

  /// Demotes main pages into the overflow FIFO until the main section is
  /// within capacity.
  void Rebalance();

  /// The combined LRU+spatial demotion victim within the main section.
  std::optional<FrameId> SelectMainVictim();

  const AsbConfig config_;
  AsbSharedTuning* shared_ = nullptr;  ///< cross-shard c (nullptr = private)
  size_t main_target_ = 0;
  size_t overflow_target_ = 0;
  int64_t step_ = 1;
  int64_t candidate_ = 1;
  std::vector<Section> section_;
  std::deque<FrameId> fifo_;  // overflow pages, demotion order
  size_t main_count_ = 0;
  std::vector<uint64_t> recency_keys_;  // demotion-scan scratch, reused
  uint64_t overflow_hits_ = 0;
  uint64_t increases_ = 0;
  uint64_t decreases_ = 0;
  // Cached metric handles; all nullptr without a collector.
  obs::Counter* obs_overflow_hits_ = nullptr;
  obs::Counter* obs_increases_ = nullptr;
  obs::Counter* obs_decreases_ = nullptr;
  obs::Gauge* obs_candidate_ = nullptr;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_ASB_H_
