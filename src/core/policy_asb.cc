#include "core/policy_asb.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/asb_shared.h"
#include "core/policy_slru.h"

namespace sdb::core {

AsbPolicy::AsbPolicy(const AsbConfig& config) : config_(config) {
  SDB_CHECK(config.overflow_fraction > 0.0 && config.overflow_fraction < 1.0);
  SDB_CHECK(config.initial_candidate_fraction > 0.0 &&
            config.initial_candidate_fraction <= 1.0);
  SDB_CHECK(config.step_fraction > 0.0 && config.step_fraction <= 1.0);
}

void AsbPolicy::SetCollector(obs::Collector* collector) {
  PolicyBase::SetCollector(collector);
  if constexpr (!obs::kEnabled) return;
  if (collector == nullptr) return;
  obs_overflow_hits_ = collector->metrics().GetCounter("asb.overflow_hits");
  obs_increases_ =
      collector->metrics().GetCounter("asb.candidate_increases");
  obs_decreases_ =
      collector->metrics().GetCounter("asb.candidate_decreases");
  obs_candidate_ = collector->metrics().GetGauge("asb.candidate");
}

void AsbPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  overflow_target_ = std::clamp<size_t>(
      static_cast<size_t>(std::lround(config_.overflow_fraction *
                                      static_cast<double>(frame_count))),
      1, frame_count > 1 ? frame_count - 1 : 1);
  main_target_ = frame_count - overflow_target_;
  step_ = std::max<int64_t>(
      1, std::llround(config_.step_fraction *
                      static_cast<double>(main_target_)));
  candidate_ = std::clamp<int64_t>(
      std::llround(config_.initial_candidate_fraction *
                   static_cast<double>(main_target_)),
      1, static_cast<int64_t>(main_target_));
  if (shared_ != nullptr) {
    shared_->BindShard(candidate_, static_cast<int64_t>(main_target_));
    ReloadSharedCandidate();
  }
  section_.assign(frame_count, Section::kNone);
  fifo_.clear();
  main_count_ = 0;
  overflow_hits_ = 0;
  increases_ = 0;
  decreases_ = 0;
  if constexpr (obs::kEnabled) {
    if (obs::Collector* c = collector()) {
      obs_candidate_->Set(static_cast<double>(candidate_));
      obs::Event event;
      event.kind = obs::EventKind::kAsbInit;
      event.a = main_target_;
      event.b = overflow_target_;
      event.c = static_cast<uint64_t>(candidate_);
      event.page = static_cast<uint64_t>(step_);
      c->events().Push(event);
    }
  }
}

void AsbPolicy::OnPageLoaded(FrameId f, storage::PageId page,
                             const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  SDB_DCHECK(section_[f] == Section::kNone);
  section_[f] = Section::kMain;
  ++main_count_;
  Rebalance();
}

void AsbPolicy::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  if (section_[f] == Section::kOverflow) {
    // The page had been selected for eviction but is needed after all: learn
    // from the mistake (using the page's pre-access state), then move it
    // back to the main section.
    ++overflow_hits_;
    Adapt(f, ctx);
    Promote(f);
    PolicyBase::OnPageAccessed(f, ctx);
    Rebalance();
    return;
  }
  PolicyBase::OnPageAccessed(f, ctx);
}

std::optional<FrameId> AsbPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  // Normal case: the overflow FIFO decides. Skip (defensively) any entry
  // that is not evictable; such entries stay queued.
  size_t examined = 0;
  for (FrameId f : fifo_) {
    ++examined;
    const FrameState& s = frame(f);
    if (s.valid && s.evictable) {
      ObserveScanLength(examined);
      return f;
    }
  }
  // No usable overflow page (e.g. a buffer too small to sustain both
  // sections): fall back to the combined rule over the whole buffer.
  if (auto victim = SelectMainVictim()) return victim;
  return LruScan();
}

void AsbPolicy::OnPageEvicted(FrameId f, storage::PageId page) {
  switch (section_[f]) {
    case Section::kOverflow:
      std::erase(fifo_, f);
      break;
    case Section::kMain:
      SDB_DCHECK(main_count_ > 0);
      --main_count_;
      break;
    case Section::kNone:
      SDB_CHECK_MSG(false, "evicting an unlabelled frame");
  }
  section_[f] = Section::kNone;
  PolicyBase::OnPageEvicted(f, page);
}

void AsbPolicy::Adapt(FrameId p, const AccessContext& ctx) {
  const double p_crit = CritOf(p);
  const uint64_t p_last = frame(p).last_access;
  size_t better_spatial = 0;  // overflow pages the criterion keeps over p
  size_t better_lru = 0;      // overflow pages LRU keeps over p
  for (FrameId g : fifo_) {
    if (g == p) continue;
    if (CritOf(g) > p_crit) ++better_spatial;
    if (frame(g).last_access > p_last) ++better_lru;
  }
  int8_t direction = 0;
  if (better_spatial > better_lru) {
    // The spatial criterion ranks p low although p was needed — LRU judged
    // better; shrink its candidate set to strengthen LRU.
    ++decreases_;
    direction = -1;
  } else if (better_spatial < better_lru) {
    ++increases_;
    direction = 1;
  }
  if (direction != 0) {
    if (shared_ != nullptr) {
      // Sharded operation: the step lands on the globally-published c, and
      // this shard adopts the result (already within the global clamp,
      // which is at most this shard's main capacity).
      candidate_ = std::clamp<int64_t>(
          shared_->ApplyStep(direction, step_), 1,
          static_cast<int64_t>(main_target_));
    } else {
      candidate_ = std::clamp<int64_t>(candidate_ + direction * step_, 1,
                                       static_cast<int64_t>(main_target_));
    }
  }
  if constexpr (obs::kEnabled) {
    if (obs::Collector* c = collector()) {
      obs_overflow_hits_->Add();
      if (direction > 0) obs_increases_->Add();
      if (direction < 0) obs_decreases_->Add();
      obs_candidate_->Set(static_cast<double>(candidate_));
      obs::Event event;
      event.kind = obs::EventKind::kAsbAdapt;
      event.delta = direction;
      event.frame = p;
      event.query = ctx.query_id;
      event.page = frame(p).page;
      event.a = better_spatial;
      event.b = better_lru;
      event.c = static_cast<uint64_t>(candidate_);
      c->events().Push(event);
    }
  }
}

void AsbPolicy::Promote(FrameId f) {
  SDB_DCHECK(section_[f] == Section::kOverflow);
  std::erase(fifo_, f);
  section_[f] = Section::kMain;
  ++main_count_;
}

void AsbPolicy::Rebalance() {
  while (main_count_ > main_target_) {
    const std::optional<FrameId> demote = SelectMainVictim();
    if (!demote) break;  // every main page pinned; retry on a later event
    section_[*demote] = Section::kOverflow;
    fifo_.push_back(*demote);
    --main_count_;
  }
}

void AsbPolicy::ReloadSharedCandidate() {
  if (shared_ == nullptr) return;
  candidate_ = std::clamp<int64_t>(shared_->Load(), 1,
                                   static_cast<int64_t>(main_target_));
}

std::optional<FrameId> AsbPolicy::SelectMainVictim() {
  // Sharded operation: adopt the candidate size other shards may have
  // adapted since this shard's last demotion scan.
  ReloadSharedCandidate();
  recency_keys_.clear();
  recency_keys_.reserve(main_count_);
  const uint64_t* versions = meta_versions();  // one virtual call per scan
  for (FrameId f = 0; f < frame_count(); ++f) {
    if (section_[f] != Section::kMain) continue;
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    // Eager warm pass: refreshes the frame's cached criterion if stale, so
    // the candidate loop below reads plain cached values.
    CachedCriterionAt(config_.criterion, f, versions ? versions[f] : 0);
    recency_keys_.push_back(PackRecencyKey(s.last_access, f));
  }
  ObserveScanLength(recency_keys_.size());
  const FrameId victim = SelectSpatialLruVictim(
      recency_keys_, static_cast<size_t>(candidate_),
      [this](FrameId f) { return CriterionCacheValue(f); });
  if (victim == kInvalidFrameId) return std::nullopt;
  return victim;
}

}  // namespace sdb::core
