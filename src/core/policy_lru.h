#ifndef SPATIALBUFFER_CORE_POLICY_LRU_H_
#define SPATIALBUFFER_CORE_POLICY_LRU_H_

#include "core/replacement_policy.h"

namespace sdb::core {

/// Plain least-recently-used replacement: the victim is the evictable page
/// whose last reference is oldest. The baseline of every experiment in the
/// paper.
class LruPolicy : public PolicyBase {
 public:
  std::string_view name() const override { return "LRU"; }
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_LRU_H_
