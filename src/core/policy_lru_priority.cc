#include "core/policy_lru_priority.h"

namespace sdb::core {

int LruPriorityPolicy::Priority(const storage::PageMeta& meta) {
  switch (meta.type) {
    case storage::PageType::kData:
    case storage::PageType::kDirectory:
      // Data pages (level 0) get priority 1; each directory level above adds
      // one; the root ends up with the highest priority in the tree.
      return 1 + meta.level;
    case storage::PageType::kObject:
    default:
      return 0;
  }
}

std::optional<FrameId> LruPriorityPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  std::optional<FrameId> best;
  int best_priority = 0;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    const int priority = Priority(MetaOf(f));
    if (!best || priority < best_priority ||
        (priority == best_priority && s.last_access < best_time)) {
      best = f;
      best_priority = priority;
      best_time = s.last_access;
    }
  }
  return best;
}

}  // namespace sdb::core
