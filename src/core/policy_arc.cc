#include "core/policy_arc.h"

#include <algorithm>

#include "common/macros.h"

namespace sdb::core {

void ArcPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  p_ = 0;
  t1_.clear();
  t2_.clear();
  in_t2_.assign(frame_count, 0);
  b1_.clear();
  b2_.clear();
  b1_set_.clear();
  b2_set_.clear();
}

void ArcPolicy::OnPageLoaded(FrameId f, storage::PageId page,
                             const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  const int64_t c = static_cast<int64_t>(frame_count());
  if (b1_set_.erase(page) > 0) {
    // Ghost hit in B1: recency was undervalued — grow p.
    std::erase(b1_, page);
    const int64_t delta = std::max<int64_t>(
        1, static_cast<int64_t>(b2_.size()) /
               std::max<int64_t>(1, static_cast<int64_t>(b1_.size() + 1)));
    p_ = std::min(c, p_ + delta);
    in_t2_[f] = 1;
    t2_.push_back(f);
  } else if (b2_set_.erase(page) > 0) {
    // Ghost hit in B2: frequency was undervalued — shrink p.
    std::erase(b2_, page);
    const int64_t delta = std::max<int64_t>(
        1, static_cast<int64_t>(b1_.size()) /
               std::max<int64_t>(1, static_cast<int64_t>(b2_.size() + 1)));
    p_ = std::max<int64_t>(0, p_ - delta);
    in_t2_[f] = 1;
    t2_.push_back(f);
  } else {
    // Case IV: the page is new to the whole directory; make room in the
    // ghost lists (trimming must NOT happen on ghost refaults, or a ghost
    // would be forgotten in the instant it proves its worth).
    in_t2_[f] = 0;
    t1_.push_back(f);
    TrimGhosts();
  }
}

void ArcPolicy::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  PolicyBase::OnPageAccessed(f, ctx);
  // Any re-reference moves the page to the MRU end of T2.
  RemoveResident(f);
  in_t2_[f] = 1;
  t2_.push_back(f);
}

std::optional<FrameId> ArcPolicy::ChooseVictim(const AccessContext&,
                                               storage::PageId incoming) {
  // REPLACE(p, x): evict from T1 if it exceeds the target (or meets it while
  // the incoming page returns from B2), else from T2.
  const bool incoming_from_b2 = b2_set_.contains(incoming);
  const bool take_t1 =
      !t1_.empty() &&
      (static_cast<int64_t>(t1_.size()) > p_ ||
       (incoming_from_b2 && static_cast<int64_t>(t1_.size()) == p_));
  if (take_t1) {
    if (auto victim = ListVictim(t1_)) return victim;
    if (auto victim = ListVictim(t2_)) return victim;
  } else {
    if (auto victim = ListVictim(t2_)) return victim;
    if (auto victim = ListVictim(t1_)) return victim;
  }
  return LruScan();
}

void ArcPolicy::OnPageEvicted(FrameId f, storage::PageId page) {
  if (in_t2_[f]) {
    b2_.push_back(page);
    b2_set_.insert(page);
  } else {
    b1_.push_back(page);
    b1_set_.insert(page);
  }
  RemoveResident(f);
  in_t2_[f] = 0;
  PolicyBase::OnPageEvicted(f, page);
}

void ArcPolicy::RemoveResident(FrameId f) {
  if (in_t2_[f]) {
    std::erase(t2_, f);
  } else {
    std::erase(t1_, f);
  }
}

std::optional<FrameId> ArcPolicy::ListVictim(
    const std::deque<FrameId>& list) const {
  for (const FrameId f : list) {
    const FrameState& s = frame(f);
    if (s.valid && s.evictable) return f;
  }
  return std::nullopt;
}

void ArcPolicy::TrimGhosts() {
  const size_t c = frame_count();
  // Standard ARC bounds: |T1|+|B1| <= c and total directory <= 2c.
  while (t1_.size() + b1_.size() > c && !b1_.empty()) {
    b1_set_.erase(b1_.front());
    b1_.pop_front();
  }
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c &&
         !b2_.empty()) {
    b2_set_.erase(b2_.front());
    b2_.pop_front();
  }
}

}  // namespace sdb::core
