#ifndef SPATIALBUFFER_CORE_POLICY_SPATIAL_H_
#define SPATIALBUFFER_CORE_POLICY_SPATIAL_H_

#include "core/replacement_policy.h"
#include "core/spatial_criterion.h"

namespace sdb::core {

/// Pure spatial page replacement (paper Sec. 2.3): the victim is the
/// evictable page with the *smallest* spatial criterion value — e.g. under
/// criterion A, the page covering the least area, because pages with large
/// regions are assumed to be requested most frequently. Ties are broken by
/// LRU, exactly as in the paper's two-step victim definition.
class SpatialPolicy : public PolicyBase {
 public:
  explicit SpatialPolicy(SpatialCriterion criterion);

  std::string_view name() const override {
    return CriterionName(criterion_);
  }
  SpatialCriterion criterion() const { return criterion_; }

  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

 private:
  const SpatialCriterion criterion_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_SPATIAL_H_
