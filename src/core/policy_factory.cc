#include "core/policy_factory.h"

#include <charconv>
#include <cstdlib>

#include "core/policy_arc.h"
#include "core/policy_asb.h"
#include "core/policy_clock.h"
#include "core/policy_domain.h"
#include "core/policy_fifo.h"
#include "core/policy_gclock.h"
#include "core/policy_lru.h"
#include "core/policy_lru_k.h"
#include "core/policy_lru_priority.h"
#include "core/policy_lru_type.h"
#include "core/policy_pin_levels.h"
#include "core/policy_slru.h"
#include "core/policy_spatial.h"
#include "core/policy_two_queue.h"
#include "core/spatial_criterion.h"

namespace sdb::core {

namespace {

/// Splits "a:b:c" into tokens.
std::vector<std::string_view> SplitSpec(std::string_view spec) {
  std::vector<std::string_view> parts;
  while (true) {
    const size_t pos = spec.find(':');
    if (pos == std::string_view::npos) {
      parts.push_back(spec);
      return parts;
    }
    parts.push_back(spec.substr(0, pos));
    spec.remove_prefix(pos + 1);
  }
}

bool ParseDouble(std::string_view s, double* out) {
  // std::from_chars<double> is not available on all libstdc++ versions in
  // the field; strtod on a bounded copy is portable and sufficient here.
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + s.size();
}

bool ParseInt(std::string_view s, int* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::unique_ptr<ReplacementPolicy> CreatePolicy(std::string_view spec) {
  const std::vector<std::string_view> parts = SplitSpec(spec);
  const std::string_view head = parts[0];

  if (head == "LRU") return std::make_unique<LruPolicy>();
  if (head == "FIFO") return std::make_unique<FifoPolicy>();
  if (head == "CLOCK") return std::make_unique<ClockPolicy>();
  if (head == "GCLOCK") return std::make_unique<GClockPolicy>();
  if (head == "2Q") return std::make_unique<TwoQueuePolicy>();
  if (head == "ARC") return std::make_unique<ArcPolicy>();
  if (head == "LRU-T") return std::make_unique<LruTypePolicy>();
  if (head == "LRU-P") return std::make_unique<LruPriorityPolicy>();

  if (head == "DOM") {
    double quota = 0.1;
    if (parts.size() >= 2 && !ParseDouble(parts[1], &quota)) return nullptr;
    if (parts.size() > 2 || quota < 0.0 || quota > 1.0) return nullptr;
    return std::make_unique<DomainPolicy>(quota);
  }

  if (head.starts_with("PIN-")) {
    int level = 0;
    if (ParseInt(head.substr(4), &level) && level >= 1) {
      return std::make_unique<PinLevelsPolicy>(level);
    }
    return nullptr;
  }

  if (head.starts_with("LRU-")) {
    int k = 0;
    if (!ParseInt(head.substr(4), &k) || k < 1) return nullptr;
    if (parts.size() == 1) return std::make_unique<LruKPolicy>(k);
    // "LRU-2:T50": time-window correlation with a 50-access period.
    if (parts.size() == 2 && parts[1].size() > 1 && parts[1][0] == 'T') {
      int period = 0;
      if (ParseInt(parts[1].substr(1), &period) && period >= 0) {
        return std::make_unique<LruKPolicy>(
            k, CorrelationMode::kByPeriod,
            static_cast<uint64_t>(period));
      }
    }
    return nullptr;
  }

  if (auto crit = ParseCriterion(head)) {
    return std::make_unique<SpatialPolicy>(*crit);
  }

  if (head == "SLRU") {
    SpatialCriterion crit = SpatialCriterion::kArea;
    double fraction = 0.25;
    if (parts.size() >= 2) {
      auto parsed = ParseCriterion(parts[1]);
      if (!parsed) return nullptr;
      crit = *parsed;
    }
    if (parts.size() >= 3 && !ParseDouble(parts[2], &fraction)) return nullptr;
    if (parts.size() > 3 || fraction <= 0.0 || fraction > 1.0) return nullptr;
    return std::make_unique<SlruPolicy>(crit, fraction);
  }

  if (head == "ASB") {
    AsbConfig config;
    if (parts.size() >= 2) {
      auto parsed = ParseCriterion(parts[1]);
      if (!parsed) return nullptr;
      config.criterion = *parsed;
    }
    if (parts.size() >= 3 && !ParseDouble(parts[2], &config.overflow_fraction))
      return nullptr;
    if (parts.size() >= 4 &&
        !ParseDouble(parts[3], &config.initial_candidate_fraction))
      return nullptr;
    if (parts.size() >= 5 && !ParseDouble(parts[4], &config.step_fraction))
      return nullptr;
    if (parts.size() > 5) return nullptr;
    return std::make_unique<AsbPolicy>(config);
  }

  return nullptr;
}

std::vector<std::string> KnownPolicySpecs() {
  return {
      "LRU",   "FIFO",  "CLOCK", "GCLOCK", "2Q",    "ARC",   "PIN-1",
      "DOM:0.1",       "LRU-T",
      "LRU-P", "LRU-2", "LRU-3", "LRU-5",  "A",     "EA",    "M",
      "EM",    "EO",    "SLRU:A:0.25",     "SLRU:A:0.5",     "ASB",
  };
}

}  // namespace sdb::core
