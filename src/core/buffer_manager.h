#ifndef SPATIALBUFFER_CORE_BUFFER_MANAGER_H_
#define SPATIALBUFFER_CORE_BUFFER_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/access_context.h"
#include "core/frame_sync.h"
#include "core/replacement_policy.h"
#include "core/status.h"
#include "obs/collector.h"
#include "storage/async_device.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/wal.h"

namespace sdb::core {

class BufferManager;

/// RAII pin on one buffered page. While a handle is alive the page cannot be
/// evicted; the pin is released on destruction. Obtain handles only from
/// BufferManager::Fetch / ::New.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return manager_ != nullptr; }
  storage::PageId page_id() const { return page_id_; }

  /// Whole page image, including the header.
  std::span<std::byte> bytes();
  std::span<const std::byte> bytes() const;

  /// Header accessors over the live frame bytes.
  storage::PageHeaderView header();
  storage::ConstPageHeaderView header() const;

  /// Marks the page dirty; it will be written back before eviction.
  void MarkDirty();

  /// Unpins early (idempotent).
  void Release();

  /// Invalidates the handle WITHOUT unpinning: the caller takes over the
  /// pin and must release it with an explicit BufferManager::Unpin on the
  /// returned frame. For code that manages pin lifetimes manually.
  FrameId Detach();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* manager, FrameId frame, storage::PageId page)
      : manager_(manager), frame_(frame), page_id_(page) {}

  BufferManager* manager_ = nullptr;
  FrameId frame_ = kInvalidFrameId;
  storage::PageId page_id_ = storage::kInvalidPageId;
};

/// Hit/miss accounting of one buffer instance. The io_* group mirrors the
/// lazily-registered obs counters (io.read_retries & co.) so fault handling
/// is testable without a collector attached.
struct BufferStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  /// Dirty victims written back synchronously on the foreground eviction
  /// path while background write-back was enabled — the stalls the flusher
  /// exists to prevent (only counted past the high watermark or when no
  /// clean victim could be found).
  uint64_t sync_writeback_fallbacks = 0;
  uint64_t io_read_retries = 0;        ///< failed read attempts that were retried
  uint64_t io_checksum_mismatches = 0; ///< verify failures (incl. terminal ones)
  uint64_t io_recovered_reads = 0;     ///< fetches that succeeded after >=1 retry
  uint64_t io_permanent_failures = 0;  ///< fetches that failed terminally
  uint64_t io_quarantined_frames = 0;  ///< frames taken out of service
  uint64_t io_write_retries = 0;       ///< failed write-back attempts retried
  uint64_t io_write_quarantined = 0;   ///< frames quarantined for write failure

  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
};

/// Outcome of an explicit BufferManager::Unpin call. Handle-driven unpins
/// always succeed (the handle owns a pin by construction); manual callers
/// get an explicit error instead of an assertion failure.
enum class UnpinStatus : uint8_t {
  kOk,
  kUnknownFrame,  ///< frame index out of range, or no page resident in it
  kNotPinned,     ///< the frame's pin count is already zero
  kQuarantined,   ///< the frame was quarantined after a terminal read failure
};

/// Outcome of an explicit BufferManager::Evict call. Typed refusals instead
/// of assertions: eviction of a pinned or quarantined frame is an ordinary
/// condition for a caller managing residency explicitly (checkpointers,
/// tests), not a harness bug.
enum class EvictStatus : uint8_t {
  kOk,
  kNotResident,      ///< the page is not in the buffer
  kPinned,           ///< refused: the frame holds live pins
  kQuarantined,      ///< refused: the frame is out of service
  kWriteBackFailed,  ///< the dirty write-back (or its WAL flush) failed
};

/// Fault-handling knobs of one BufferManager. The defaults keep the fault
/// machinery semantically invisible over a healthy device: verification only
/// runs when the device maintains checksums, retries only trigger on failed
/// reads, and the zero backoff keeps retry timing deterministic for tests
/// and replays.
struct ResilienceOptions {
  /// Verify the CRC-32C of every page read against the device sidecar
  /// (skipped when the device reports no checksum). Detects torn reads and
  /// bit flips before corrupt bytes reach query execution.
  bool verify_checksums = true;
  /// Failed-read retries beyond the first attempt (so a fetch performs at
  /// most 1 + max_read_retries device reads).
  uint32_t max_read_retries = 3;
  /// Failed write-back retries beyond the first attempt, applied only to
  /// retryable device errors. Doubles as the escalation threshold of the
  /// background flusher: a frame whose write-back rounds keep failing past
  /// this count is write-quarantined instead of re-harvested forever.
  uint32_t max_write_retries = 3;
  /// Base of the exponential backoff between retries, in microseconds;
  /// 0 disables sleeping entirely (the default — simulated devices fail
  /// deterministically, not because of load).
  uint32_t backoff_base_us = 0;
  /// Seed of the deterministic backoff jitter (+/-50%).
  uint64_t backoff_seed = 0;
  /// Most frames this buffer may quarantine before terminally-failing reads
  /// start recycling frames instead (a shrinking pool must keep serving).
  /// 0 = half the pool.
  size_t max_quarantined_frames = 0;
};

/// Concurrency knobs of one BufferManager (EnableConcurrency). Off by
/// default: single-threaded users never pay for any of it.
struct ConcurrentOptions {
  /// Latch-free optimistic read path: hits pin through per-frame version
  /// stamps instead of the shard latch, deferring their policy/stats
  /// bookkeeping into an event ring the next exclusive section drains.
  bool optimistic = true;
  /// Capacity of the deferred-event ring (rounded up to a power of two). A
  /// full ring falls back to the exclusive path, so this bounds deferral.
  size_t event_ring_capacity = 1024;
  /// Optimistic probe attempts before giving up and taking the latch.
  uint32_t max_optimistic_retries = 3;
  /// Route batched misses (FetchBatch) through an AsyncPageDevice so the
  /// batch's reads are submitted together and complete out of order.
  bool async_reads = true;
  storage::AsyncDeviceOptions async;
};

/// Background write-back knobs (ConfigureBackgroundWriteback). Disabled by
/// default: eviction then writes dirty victims back synchronously inside
/// the pin path, the pre-flusher behaviour.
struct WritebackOptions {
  /// When on, eviction prefers clean victims while the dirty ratio is at or
  /// below `high_watermark`, leaving dirty pages to the background flusher;
  /// a synchronous foreground write-back only happens past the high
  /// watermark or when no clean victim exists within `max_clean_scan`
  /// skips, counted in BufferStats::sync_writeback_fallbacks.
  bool enabled = false;
  /// Dirty ratio (dirty frames / usable frames) at or below which the
  /// flusher leaves the pool alone — a small dirty set is free write
  /// combining for re-dirtied pages.
  double low_watermark = 0.10;
  /// Dirty ratio above which eviction stops waiting for the flusher.
  double high_watermark = 0.50;
  /// Dirty victims one frame acquisition will set aside while hunting for
  /// a clean victim before giving up and writing back synchronously.
  size_t max_clean_scan = 8;
};

/// One dirty frame selected by HarvestFlushCandidates for background
/// write-back.
struct DirtyCandidate {
  FrameId frame = kInvalidFrameId;
  storage::PageId page = storage::kInvalidPageId;
  uint64_t rec_lsn = 0;   ///< 1-based recovery LSN at harvest time
  uint64_t page_lsn = 0;  ///< durable-image LSN the write-ahead rule needs
};

/// Source of pinned pages — the interface query execution (the R-tree)
/// traverses through. Implemented by BufferManager (one private,
/// single-threaded buffer: the paper's experimental setup) and by
/// svc::BufferService (one logical buffer sharded across many
/// BufferManagers behind per-shard latches, serving concurrent clients).
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Returns a pinned handle on the page, reading it from the backing
  /// device on a miss. Non-OK when the page could not be delivered after
  /// bounded retries: kUnavailable/kDataLoss exhausted their retry budget
  /// (now recorded as a permanent failure), kPermanentFailure for bad
  /// sectors, kResourceExhausted when quarantine left no usable frame.
  virtual StatusOr<PageHandle> Fetch(storage::PageId page,
                                     const AccessContext& ctx) = 0;

  /// Fetches a batch of pages, returning one pinned-handle-or-error per
  /// input in input order. The default is a sequential Fetch loop —
  /// behaviorally identical to the caller looping itself — while sources
  /// with an asynchronous read pipeline (svc::BufferService) overlap the
  /// batch's misses. Every element counts as exactly one access either
  /// way. All handles of a batch may be alive at once, so callers must
  /// size batches against the source's pin headroom.
  virtual void FetchBatch(std::span<const storage::PageId> pages,
                          const AccessContext& ctx,
                          std::vector<StatusOr<PageHandle>>* out);

  /// Whether callers should group independent fetches into FetchBatch
  /// calls. False by default: batching holds every handle of a batch
  /// pinned at once, which perturbs victim choice in small buffers, so a
  /// source only opts in when its batch pipeline buys something (the
  /// sharded service). Callers honoring this keeps the single-threaded
  /// figure replications bit-identical to the sequential traversal.
  virtual bool PrefersBatchedReads() const { return false; }

  /// Most handles a caller should keep alive out of one FetchBatch call.
  /// 0 (the default) means unbounded; a sharded source answers its
  /// per-shard frame count minus headroom, because a batch can land
  /// entirely on one shard and a batch wider than the shard genuinely
  /// exhausts it (every frame pinned, no victim possible). Callers chunk
  /// their batches to this budget.
  virtual size_t BatchPinBudget() const { return 0; }

  /// Allocates a fresh zeroed page and pins it. Sources serving read-only
  /// traffic return kUnimplemented.
  virtual StatusOr<PageHandle> New(const AccessContext& ctx) = 0;

  /// Current buffered image of a resident page (empty span if not
  /// resident). Structural inspection only: not an access, and only
  /// meaningful while no concurrent traffic can evict the page.
  virtual std::span<const std::byte> Peek(storage::PageId page) const = 0;

  /// Conveniences for call sites where an I/O error indicates a harness bug
  /// (index builds and replays over a fault-free simulated device): unwrap
  /// or abort with the error text.
  PageHandle FetchOrDie(storage::PageId page, const AccessContext& ctx) {
    return Fetch(page, ctx).ValueOrDie();
  }
  PageHandle NewOrDie(const AccessContext& ctx) {
    return New(ctx).ValueOrDie();
  }
};

/// Page buffer with a pluggable replacement policy — the experimental
/// apparatus of the paper. Frames hold page images read from one
/// PageDevice (a DiskManager or a per-run ReadOnlyDiskView); every miss
/// costs exactly one disk read (plus a write-back if the victim is dirty).
class BufferManager : public FrameMetaSource, public PageSource {
 public:
  /// `frames` is the buffer capacity in pages. The policy is bound to this
  /// buffer and must not be shared. `collector` (optional) receives metrics
  /// and events from this buffer and its policy; it must outlive the buffer
  /// and is attached before the policy binds, so bind-time events (e.g.
  /// ASB's configuration record) are captured. With observability compiled
  /// out (SDB_OBS=OFF) the collector is ignored.
  BufferManager(storage::PageDevice* disk, size_t frames,
                std::unique_ptr<ReplacementPolicy> policy,
                obs::Collector* collector = nullptr,
                ResilienceOptions resilience = {});
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Returns a pinned handle on the page, reading it from disk on a miss.
  /// Transient read failures and checksum mismatches are retried up to
  /// ResilienceOptions::max_read_retries times with exponential backoff;
  /// a terminal failure quarantines the staging frame, remembers the page
  /// as bad (subsequent fetches fail fast without touching the device) and
  /// returns the error.
  StatusOr<PageHandle> Fetch(storage::PageId page,
                             const AccessContext& ctx) override;

  /// Allocates a fresh zeroed page on disk and pins it (no disk read).
  /// Fails only with kResourceExhausted once quarantine has consumed the
  /// evictable pool.
  StatusOr<PageHandle> New(const AccessContext& ctx) override;

  /// Installs an externally-allocated, still-zeroed page and pins it —
  /// New() split in two for callers that must route a page to a specific
  /// buffer after allocating it elsewhere (the sharded service allocates on
  /// the shared device, then installs into the page's home shard). The page
  /// must not be resident anywhere.
  StatusOr<PageHandle> NewAt(storage::PageId page, const AccessContext& ctx);

  /// True if the page is currently resident.
  bool Contains(storage::PageId page) const;

  /// Current in-buffer image of a resident page (which may be newer than
  /// the disk copy), or an empty span if the page is not resident. Does not
  /// count as an access and must not be used by query execution.
  std::span<const std::byte> Peek(storage::PageId page) const override;

  /// Releases one pin on `frame`, marking the page dirty first if `dirty`.
  /// Returns an explicit error — instead of asserting — when the frame is
  /// out of range / holds no page (kUnknownFrame) or is not pinned
  /// (kNotPinned); the buffer state is untouched in both error cases.
  /// Acquires the external latch (see set_latch) when one is attached, so
  /// handle releases are safe without the caller holding the shard latch.
  UnpinStatus Unpin(FrameId frame, bool dirty);

  /// Attaches the latch that guards this buffer inside a sharded service
  /// (nullptr detaches). When set, the PageHandle release/MarkDirty paths
  /// acquire it; Fetch/New/Contains/stats callers must hold it themselves
  /// — svc::BufferService is that caller. Single-threaded users never set
  /// this, keeping every hot path latch-free.
  void set_latch(std::mutex* latch) { latch_ = latch; }

  /// Switches this buffer into concurrent mode (call once, before traffic,
  /// with the external latch already attached): allocates the per-frame
  /// version stamps, the lock-free page table mirror and the deferred-event
  /// ring, and optionally the async read pipeline. From then on
  /// TryOptimisticFetch may serve hits without the latch, and exclusive
  /// sections (Fetch/New/Unpin/stats under the latch) drain the ring first.
  void EnableConcurrency(const ConcurrentOptions& options);
  bool concurrent() const { return concurrent_; }

  /// Latch-free hit path: probes the concurrent page table, pins through
  /// the frame's version stamp, and defers the policy/stats bookkeeping
  /// into the event ring. Returns nullopt — after bounded retries — on a
  /// miss, a version conflict, or a full ring; the caller then takes the
  /// latch and calls Fetch. Only valid in concurrent mode.
  std::optional<PageHandle> TryOptimisticFetch(storage::PageId page,
                                               const AccessContext& ctx);

  /// Replays the deferred optimistic hit/unpin events into the policy,
  /// stats and collector, in ring (FIFO) order. Callers must hold the
  /// external latch. Fetch/New/Unpin drain implicitly; explicit callers are
  /// the service's stats/metrics paths, which must drain before reading.
  void DrainDeferred();

  /// Batched miss pipeline body (latch held, ring drained by the caller or
  /// a prior exclusive section): semantically a sequential Fetch loop over
  /// `pages`, but with the misses' device reads submitted as one batch
  /// through the async device (when enabled) so they complete out of order
  /// ahead of the in-order install/policy phase. Appends one result per
  /// page to `out`.
  void FetchBatchLocked(std::span<const storage::PageId> pages,
                        const AccessContext& ctx,
                        std::vector<StatusOr<PageHandle>>* out);

  /// Optimistic-path counters (concurrent mode; all zero otherwise).
  /// Retries = optimistic attempts abandoned for any reason; conflicts =
  /// version validations that failed against a concurrent writer.
  uint64_t optimistic_hits() const {
    return optimistic_hits_.load(std::memory_order_relaxed);
  }
  uint64_t optimistic_retries() const {
    return optimistic_retries_.load(std::memory_order_relaxed);
  }
  uint64_t version_conflicts() const {
    return version_conflicts_.load(std::memory_order_relaxed);
  }

  /// The async read pipeline (nullptr when async reads are off).
  const storage::AsyncPageDevice* async_device() const {
    return async_device_.get();
  }

  /// Attaches the write-ahead log (nullptr detaches). From then on the
  /// write-ahead rule holds: no dirty frame reaches the data device before
  /// its after-image is durable in the log — eviction of a logged page
  /// waits for the log flush, and eviction of a dirty-but-unlogged page
  /// forces a steal commit of that single page first. Callers that want
  /// crash consistency without steals must size the buffer so dirty pages
  /// survive until the next Commit/Checkpoint.
  void AttachWal(wal::WalManager* wal) { wal_ = wal; }
  wal::WalManager* wal() const { return wal_; }

  /// Logs the after-image of every dirty-and-not-yet-logged frame plus one
  /// commit record as an atomic group and waits for durability. Frames stay
  /// dirty (and resident); they become cheap to evict, since their images
  /// are already in the log. Requires an attached WAL.
  Status Commit(const AccessContext& ctx = {});

  /// Commit, then force every dirty frame to the data device and append a
  /// durable checkpoint record: after this the data device holds exactly
  /// the committed state and recovery replays nothing before the record.
  Status Checkpoint(const AccessContext& ctx = {});

  /// Forces every dirty frame to the data device without evicting it
  /// (honoring the write-ahead rule per frame). The write-back half of
  /// Checkpoint, exposed so a sharded service can interleave one shared
  /// checkpoint record between per-shard forces.
  Status ForceDirty(const AccessContext& ctx = {});

  /// Explicitly evicts one page, writing it back first if dirty (honoring
  /// the write-ahead rule). Refusals are typed, never assertions.
  EvictStatus Evict(storage::PageId page);

  /// Dirty-frame census: resident frames whose bytes differ from the data
  /// device. `min_rec_lsn` is the smallest recovery LSN among them (0 when
  /// none are dirty or no WAL is attached) — the log prefix a redo pass
  /// would need, which sizes the recovery-time-vs-dirty-set bench axis.
  size_t dirty_count() const;
  uint64_t min_rec_lsn() const;

  /// Switches watermark-driven background write-back on or off. Changes
  /// only eviction's victim preference and unlocks the harvest API below —
  /// the flusher threads themselves belong to the owning service.
  void ConfigureBackgroundWriteback(const WritebackOptions& options);
  const WritebackOptions& writeback_options() const { return writeback_; }

  /// O(1) dirty census for watermark math, maintained on every
  /// clean<->dirty edge (dirty_count() scans and is for reporting).
  size_t dirty_frame_count() const { return dirty_frames_; }

  /// Selects up to `max` background-flush candidates: dirty, unpinned,
  /// non-quarantined frames whose current bytes are already logged
  /// (wal_logged) — flushing only those never needs a steal commit, the
  /// flusher's steal-avoidance invariant. Ordered oldest rec_lsn first, so
  /// flushing them advances the checkpoint low-water mark fastest. Caller
  /// holds the external latch. Appends to `out`, returns the count added.
  size_t HarvestFlushCandidates(size_t max, std::vector<DirtyCandidate>* out);

  /// Writes harvested candidates to the data device in ascending page-id
  /// order (write clustering), honoring the write-ahead rule, skipping —
  /// without error — any candidate that was evicted, re-pinned or
  /// re-dirtied past its logged image since the harvest (the page stays
  /// dirty; a later round picks it up). Caller holds the external latch.
  /// Returns the number written back.
  StatusOr<size_t> FlushFrames(std::span<const DirtyCandidate> candidates,
                               const AccessContext& ctx);

  /// The two halves of Commit, exposed so a sharded service can gather
  /// images from every shard (all latches held) into ONE atomic commit
  /// group. CollectDirtyPages appends an image ref (aliasing the frame
  /// bytes — keep the latch!) and the frame id of every dirty, unlogged
  /// frame; MarkFramesCommitted records the group's end LSN on them.
  void CollectDirtyPages(std::vector<wal::PageImageRef>* images,
                         std::vector<FrameId>* frames);
  void MarkFramesCommitted(std::span<const FrameId> frames, uint64_t end_lsn);

  /// Writes back all dirty resident pages (without evicting them). With a
  /// WAL attached this commits first (write-ahead rule), so it degrades to
  /// a checkpoint without the checkpoint record; failures abort — callers
  /// needing a status use Commit/Checkpoint/Evict.
  void FlushAll();

  size_t frame_count() const { return frames_.size(); }
  size_t resident_count() const { return page_table_.size(); }
  storage::PageDevice& disk() { return *disk_; }
  ReplacementPolicy& policy() { return *policy_; }
  const ReplacementPolicy& policy() const { return *policy_; }
  /// The attached observability collector (nullptr = none).
  obs::Collector* collector() const { return obs_; }
  const BufferStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = BufferStats{};
    header_decodes_ = 0;
    flushed_header_decodes_ = 0;
  }

  /// Frames currently out of service after terminal read failures. They are
  /// never on the free list and never become policy candidates, so the
  /// effective pool is frame_count() - quarantined_count().
  size_t quarantined_count() const { return quarantined_count_; }
  /// The quarantine ceiling this buffer was configured with (resolved from
  /// ResilienceOptions::max_quarantined_frames; 0 there = half the pool).
  /// quarantined_count() == quarantine_cap() is the saturation signal the
  /// service's degraded mode watches.
  size_t quarantine_cap() const { return quarantine_cap_; }

  /// True if `page` previously failed terminally; fetches of it fail fast.
  bool IsBadPage(storage::PageId page) const {
    return bad_pages_.contains(page);
  }
  size_t bad_page_count() const { return bad_pages_.size(); }

  const ResilienceOptions& resilience() const { return resilience_; }

  /// FrameMetaSource: metadata of the page resident in `frame`, served from
  /// the per-frame cache (decoded once per page load / in-place update
  /// instead of once per victim-scan visit).
  storage::PageMeta GetMeta(FrameId frame) const override;

  /// FrameMetaSource: bumped whenever a frame's cached metadata may have
  /// changed (page load, MarkDirty, dirty unpin). With the cache disabled
  /// this reports 0 ("assume changed") so the policies' criterion caches
  /// are defeated too and the A/B measurement covers the whole path.
  uint64_t MetaVersion(FrameId frame) const override {
    return meta_cache_enabled_ ? meta_versions_[frame] : 0;
  }

  /// FrameMetaSource: the raw version array for scan hoisting (nullptr when
  /// the cache is disabled, defeating the policies' criterion caches too).
  const uint64_t* MetaVersionArray() const override {
    return meta_cache_enabled_ ? meta_versions_.data() : nullptr;
  }

  /// Disables (or re-enables) the metadata cache, forcing every GetMeta back
  /// to a full header decode — the pre-cache behaviour, kept for A/B
  /// measurement in micro benches. Not for production use.
  void set_meta_cache_enabled(bool enabled) { meta_cache_enabled_ = enabled; }

  /// Header decodes performed on behalf of GetMeta. With the cache enabled
  /// this counts only re-decodes after an in-place update (steady-state
  /// victim scans decode nothing); with the cache disabled every GetMeta
  /// call decodes.
  uint64_t header_decodes() const { return header_decodes_; }

  /// Publishes the end-of-run aggregate counters (BufferStats, header
  /// decodes) into the attached collector's registry — totals the hot path
  /// does not maintain eagerly. Idempotent: repeated calls add only the
  /// delta since the previous flush, so live dashboards may call it at any
  /// cadence. No-op without a collector.
  void FlushObservability();

 private:
  friend class PageHandle;

  struct Frame {
    storage::PageId page = storage::kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool quarantined = false;
    /// The frame's current bytes are logged and committed in the WAL.
    /// Cleared on every (re)dirty; a clean frame's value is meaningless.
    bool wal_logged = false;
    /// End LSN of the newest logged image of this page; the write-ahead
    /// rule makes write-back wait for this prefix to be durable.
    uint64_t page_lsn = 0;
    /// Recovery LSN + 1 (0 = clean): the log position when the frame first
    /// became dirty, i.e. where redo for this page would have to start.
    uint64_t rec_lsn = 0;
    /// Consecutive failed write-back rounds (each round is one bounded
    /// retry loop). Reset on a successful write-back; past
    /// ResilienceOptions::max_write_retries the flusher escalates to
    /// write-quarantine.
    uint32_t write_failures = 0;
  };

  /// Cached decoded header of the resident page; valid iff `version`
  /// matches the frame's current meta version.
  struct MetaCacheEntry {
    storage::PageMeta meta;
    uint64_t version = 0;  ///< 0 = never filled (versions start at 1)
  };

  std::byte* FrameData(FrameId f);
  const std::byte* FrameData(FrameId f) const;

  /// Finds a frame for an incoming page: free list first, else victim
  /// eviction. Returns kResourceExhausted when quarantine has shrunk the
  /// pool to nothing evictable; still aborts when the pool is healthy and
  /// every frame is pinned (caller bug, exactly the seed behaviour).
  StatusOr<FrameId> AcquireFrame(const AccessContext& ctx,
                                 storage::PageId incoming);

  /// One device read into `frame` plus checksum verification and the
  /// bounded retry/backoff loop; on terminal failure quarantines the frame
  /// and records the page as bad. `page` is not yet in the page table.
  Status ReadPageWithRecovery(FrameId frame, storage::PageId page);

  /// The verify/retry/quarantine tail of ReadPageWithRecovery, with the
  /// first attempt's bytes already in the frame and its status in `status`
  /// — shared by the sync path and the async batch path (whose first
  /// attempt came through the staging arena).
  Status FinishReadWithRecovery(FrameId frame, storage::PageId page,
                                Status status);

  /// One element of FetchBatchLocked's in-order phase: a sequential Fetch,
  /// except that a staged async completion (when one exists for `page`)
  /// replaces the first device read.
  StatusOr<PageHandle> FetchOneInBatch(
      storage::PageId page, const AccessContext& ctx,
      const std::unordered_map<storage::PageId, size_t>& staged_slot,
      std::unordered_map<storage::PageId, Status>* completed,
      std::vector<storage::AsyncPageDevice::Completion>* completions);

  /// Takes `frame` out of service (or recycles it once the quarantine cap
  /// is hit) after a terminal read failure.
  void QuarantineFrame(FrameId frame, storage::PageId page);

  /// Write-side escalation: detaches the (dirty, wal_logged) page from the
  /// tables, pins the redo low-water mark so log truncation cannot drop the
  /// page's only current image, remembers the page as bad, then hands the
  /// frame to QuarantineFrame. Caller holds the latch (and, in concurrent
  /// mode, the frame's version lock with a zero pin count).
  void QuarantineWriteFailure(FrameId frame);

  /// Registers the io.* counters in the collector on first fault — lazily,
  /// so fault-free runs export exactly the metric set they always did.
  void EnsureIoObs();

  /// Same lazy registration for the write-side io.* counters, kept separate
  /// so read-fault-only runs keep their exact exported metric set.
  void EnsureWriteObs();

  /// Deterministic exponential backoff with jitter before retry number
  /// `failures` (1-based); no-op when backoff_base_us is 0.
  void BackoffBeforeRetry(uint32_t failures, storage::PageId page);

  /// Unpin body, latch already held (or no latch attached).
  UnpinStatus UnpinLocked(FrameId frame, bool dirty);

  /// Handle-release fast path: in concurrent mode an atomic decrement plus
  /// a deferred event (the handle owns the pin by construction, so no
  /// status to report); otherwise the classic latched Unpin.
  void ReleasePin(FrameId frame);

  /// Applies one drained event to policy/stats/collector (latch held).
  void ApplyDeferred(const DeferredEvent& event);

  /// The concurrent-mode pin-count accessors: frames_[f].pin_count and
  /// sync_[f].pins must agree at every exclusive-section boundary, so all
  /// exclusive-path pin arithmetic funnels through these.
  uint32_t PinCount(FrameId f) const {
    return concurrent_ ? sync_[f].pins.load(std::memory_order_acquire)
                       : frames_[f].pin_count;
  }
  /// Returns the pre-increment count.
  uint32_t PinIncrement(FrameId f) {
    if (concurrent_) return sync_[f].pins.fetch_add(1, std::memory_order_acq_rel);
    return frames_[f].pin_count++;
  }
  /// Returns the pre-decrement count.
  uint32_t PinDecrement(FrameId f) {
    if (concurrent_) return sync_[f].pins.fetch_sub(1, std::memory_order_acq_rel);
    return frames_[f].pin_count--;
  }
  /// Installs `page` into frame `f` after its bytes are in place: page
  /// table(s), frame fields, pin count 1, meta fill, policy load callback.
  /// In concurrent mode the caller holds the frame's version latch and this
  /// publishes page/pins before the caller unlocks.
  void InstallLoadedPage(FrameId f, storage::PageId page,
                         const AccessContext& ctx, bool dirty);

  /// PageHandle::MarkDirty body: latches, sets the dirty bit and drops the
  /// frame's cached metadata.
  void MarkFrameDirty(FrameId frame);

  /// Dirty-tracking bookkeeping shared by every path that dirties a frame:
  /// sets the bit, invalidates the logged state (the bytes changed since the
  /// last image) and stamps the recovery LSN on the clean->dirty edge.
  void NoteDirtyLocked(FrameId frame);

  /// Writes one dirty frame back to the data device, honoring the
  /// write-ahead rule when a WAL is attached (EnsureDurable for logged
  /// frames, a forced steal commit for unlogged ones). Retryable device
  /// failures are retried up to max_write_retries times with backoff.
  /// No-op when clean. `device_write_failed`, when given, is set iff the
  /// returned error came from the data-device write (as opposed to the WAL
  /// half) — the distinction the flusher's quarantine escalation needs.
  Status WriteBackLocked(FrameId frame, const AccessContext& ctx,
                         bool* device_write_failed = nullptr);

  /// True when the dirty ratio exceeds the configured high watermark (the
  /// point where eviction stops deferring to the background flusher).
  bool PastHighWatermark() const {
    const size_t usable = frames_.size() - quarantined_count_;
    if (usable == 0) return true;
    return static_cast<double>(dirty_frames_) >
           writeback_.high_watermark * static_cast<double>(usable);
  }

  /// Marks the frame's cached metadata stale (in-place page update); the
  /// next GetMeta re-decodes the header.
  void InvalidateMeta(FrameId frame) { ++meta_versions_[frame]; }

  /// Decodes the frame's header into the cache under a fresh version (page
  /// just loaded or created).
  void FillMeta(FrameId frame);

  storage::PageDevice* disk_;
  // Write-ahead log (nullptr = read-only use; every WAL touch is guarded).
  wal::WalManager* wal_ = nullptr;
  // External shard latch (nullptr = single-threaded use, no locking).
  std::mutex* latch_ = nullptr;
  std::unique_ptr<ReplacementPolicy> policy_;
  size_t page_size_;
  ResilienceOptions resilience_;
  size_t quarantine_cap_ = 0;
  size_t quarantined_count_ = 0;
  // Pages that failed terminally, with the status code to fail fast with.
  std::unordered_map<storage::PageId, StatusCode> bad_pages_;
  std::unique_ptr<std::byte[]> frame_data_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<storage::PageId, FrameId> page_table_;
  BufferStats stats_;
  // Background write-back state: knobs plus the O(1) dirty census the
  // watermark checks read on every eviction.
  WritebackOptions writeback_;
  size_t dirty_frames_ = 0;
  // The metadata cache proper: entries are re-decoded lazily inside the
  // logically-const GetMeta, hence mutable.
  std::vector<uint64_t> meta_versions_;
  mutable std::vector<MetaCacheEntry> meta_cache_;
  mutable uint64_t header_decodes_ = 0;
  bool meta_cache_enabled_ = true;
  // Observability (all nullptr when no collector is attached or SDB_OBS is
  // off): eviction counters/events are recorded eagerly, aggregate totals
  // go through FlushObservability.
  obs::Collector* obs_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_writebacks_ = nullptr;
  // Registered by ConfigureBackgroundWriteback(enabled), so runs without a
  // flusher export an unchanged metric set.
  obs::Counter* obs_sync_fallbacks_ = nullptr;
  // io.* fault counters, registered lazily by EnsureIoObs on first fault so
  // healthy runs export an unchanged metric set.
  obs::Counter* obs_io_retries_ = nullptr;
  obs::Counter* obs_io_mismatches_ = nullptr;
  obs::Counter* obs_io_quarantined_ = nullptr;
  obs::Counter* obs_io_permanent_ = nullptr;
  // Write-side io.* counters, registered lazily by EnsureWriteObs.
  obs::Counter* obs_io_write_retries_ = nullptr;
  obs::Counter* obs_io_write_quarantined_ = nullptr;
  // Smallest rec_lsn among write-quarantined pages (0 = none): their only
  // current image lives in the WAL, so min_rec_lsn() — and with it fuzzy
  // checkpoint truncation — must never advance past it.
  uint64_t write_quarantined_rec_lsn_floor_ = 0;
  uint64_t flushed_header_decodes_ = 0;
  // --- concurrent mode (EnableConcurrency; all null/false otherwise) ---
  bool concurrent_ = false;
  ConcurrentOptions concurrent_options_;
  // One sync word per frame; sized with frames_ at EnableConcurrency.
  std::unique_ptr<FrameSync[]> sync_;
  // Lock-free-readable mirror of page_table_, maintained by every exclusive
  // mutation. page_table_ stays authoritative inside exclusive sections.
  std::unique_ptr<ConcurrentPageTable> concurrent_table_;
  std::unique_ptr<AccessEventRing> deferred_;
  std::atomic<uint64_t> optimistic_hits_{0};
  std::atomic<uint64_t> optimistic_retries_{0};
  std::atomic<uint64_t> version_conflicts_{0};
  // Async batched-read pipeline (FetchBatchLocked misses) plus its staging
  // arena: queue_depth page-sized buffers the completions land in before
  // the in-order install phase copies them into frames.
  std::unique_ptr<storage::AsyncPageDevice> async_device_;
  std::unique_ptr<std::byte[]> staging_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_BUFFER_MANAGER_H_
