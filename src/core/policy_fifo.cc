#include "core/policy_fifo.h"

namespace sdb::core {

std::optional<FrameId> FifoPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    if (!best || s.load_time < best_time) {
      best = f;
      best_time = s.load_time;
    }
  }
  return best;
}

}  // namespace sdb::core
