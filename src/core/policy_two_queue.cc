#include "core/policy_two_queue.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace sdb::core {

TwoQueuePolicy::TwoQueuePolicy(double a1in_fraction, double a1out_factor)
    : a1in_fraction_(a1in_fraction), a1out_factor_(a1out_factor) {
  SDB_CHECK(a1in_fraction > 0.0 && a1in_fraction <= 1.0);
  SDB_CHECK(a1out_factor >= 0.0);
}

void TwoQueuePolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  a1in_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(a1in_fraction_ *
                                         static_cast<double>(frame_count))));
  a1out_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(a1out_factor_ *
                                         static_cast<double>(frame_count))));
  a1in_.clear();
  in_am_.assign(frame_count, 0);
  a1out_fifo_.clear();
  a1out_.clear();
}

void TwoQueuePolicy::OnPageLoaded(FrameId f, storage::PageId page,
                                  const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  if (a1out_.erase(page) > 0) {
    // Remembered from an earlier residence: proven reuse, straight into Am.
    std::erase(a1out_fifo_, page);
    in_am_[f] = 1;
  } else {
    in_am_[f] = 0;
    a1in_.push_back(f);
  }
}

std::optional<FrameId> TwoQueuePolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  // Prefer the probation queue while it exceeds its share.
  if (a1in_.size() > a1in_capacity_ ||
      (!a1in_.empty() && a1in_.size() >= frame_count())) {
    for (const FrameId f : a1in_) {
      const FrameState& s = frame(f);
      if (s.valid && s.evictable) return f;
    }
  }
  // Otherwise the least recently used Am page.
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable || !in_am_[f]) continue;
    if (!best || s.last_access < best_time) {
      best = f;
      best_time = s.last_access;
    }
  }
  if (best) return best;
  // Am is empty (warm-up): fall back to the head of A1in, then plain LRU.
  for (const FrameId f : a1in_) {
    const FrameState& s = frame(f);
    if (s.valid && s.evictable) return f;
  }
  return LruScan();
}

void TwoQueuePolicy::OnPageEvicted(FrameId f, storage::PageId page) {
  if (!in_am_[f]) {
    // Leaving the probation queue: remember the page id as a ghost.
    std::erase(a1in_, f);
    a1out_.insert(page);
    a1out_fifo_.push_back(page);
    while (a1out_fifo_.size() > a1out_capacity_) {
      a1out_.erase(a1out_fifo_.front());
      a1out_fifo_.pop_front();
    }
  }
  in_am_[f] = 0;
  PolicyBase::OnPageEvicted(f, page);
}

}  // namespace sdb::core
