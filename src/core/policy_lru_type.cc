#include "core/policy_lru_type.h"

namespace sdb::core {

int LruTypePolicy::CategoryRank(storage::PageType type) {
  switch (type) {
    case storage::PageType::kObject:
      return 0;  // dropped immediately
    case storage::PageType::kData:
      return 1;
    case storage::PageType::kDirectory:
      return 2;  // kept as long as possible
    default:
      return 0;  // free/meta pages have no reason to stay
  }
}

std::optional<FrameId> LruTypePolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  std::optional<FrameId> best;
  int best_rank = 0;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    const int rank = CategoryRank(MetaOf(f).type);
    if (!best || rank < best_rank ||
        (rank == best_rank && s.last_access < best_time)) {
      best = f;
      best_rank = rank;
      best_time = s.last_access;
    }
  }
  return best;
}

}  // namespace sdb::core
