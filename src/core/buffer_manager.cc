#include "core/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "storage/crc32c.h"

namespace sdb::core {

namespace {
/// splitmix64 finalizer for the backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = std::exchange(other.manager_, nullptr);
    frame_ = std::exchange(other.frame_, kInvalidFrameId);
    page_id_ = std::exchange(other.page_id_, storage::kInvalidPageId);
  }
  return *this;
}

std::span<std::byte> PageHandle::bytes() {
  SDB_CHECK(valid());
  return {manager_->FrameData(frame_), manager_->page_size_};
}

std::span<const std::byte> PageHandle::bytes() const {
  SDB_CHECK(valid());
  return {manager_->FrameData(frame_), manager_->page_size_};
}

storage::PageHeaderView PageHandle::header() {
  SDB_CHECK(valid());
  return storage::PageHeaderView(manager_->FrameData(frame_));
}

storage::ConstPageHeaderView PageHandle::header() const {
  SDB_CHECK(valid());
  return storage::ConstPageHeaderView(manager_->FrameData(frame_));
}

void PageHandle::MarkDirty() {
  SDB_CHECK(valid());
  manager_->MarkFrameDirty(frame_);
}

void PageHandle::Release() {
  if (manager_ != nullptr) {
    const UnpinStatus status = manager_->Unpin(frame_, /*dirty=*/false);
    SDB_CHECK_MSG(status == UnpinStatus::kOk,
                  "handle released a frame it no longer pins");
    manager_ = nullptr;
    frame_ = kInvalidFrameId;
    page_id_ = storage::kInvalidPageId;
  }
}

FrameId PageHandle::Detach() {
  SDB_CHECK(valid());
  const FrameId frame = frame_;
  manager_ = nullptr;
  frame_ = kInvalidFrameId;
  page_id_ = storage::kInvalidPageId;
  return frame;
}

BufferManager::BufferManager(storage::PageDevice* disk, size_t frames,
                             std::unique_ptr<ReplacementPolicy> policy,
                             obs::Collector* collector,
                             ResilienceOptions resilience)
    : disk_(disk),
      policy_(std::move(policy)),
      page_size_(disk->page_size()),
      resilience_(resilience) {
  SDB_CHECK(disk_ != nullptr);
  SDB_CHECK(policy_ != nullptr);
  SDB_CHECK_MSG(frames > 0, "buffer needs at least one frame");
  quarantine_cap_ = resilience_.max_quarantined_frames != 0
                        ? std::min(resilience_.max_quarantined_frames, frames)
                        : frames / 2;
  if constexpr (obs::kEnabled) {
    obs_ = collector;
    if (obs_ != nullptr) {
      obs_evictions_ = obs_->metrics().GetCounter("buffer.evictions");
      obs_writebacks_ = obs_->metrics().GetCounter("buffer.dirty_writebacks");
    }
  }
  frame_data_ = std::make_unique<std::byte[]>(frames * page_size_);
  frames_.assign(frames, Frame{});
  meta_versions_.assign(frames, 0);
  meta_cache_.assign(frames, MetaCacheEntry{});
  free_frames_.reserve(frames);
  // Hand out low frame ids first (cosmetic; makes traces easier to read).
  for (size_t f = frames; f > 0; --f) {
    free_frames_.push_back(static_cast<FrameId>(f - 1));
  }
  // Collector before Bind so bind-time events (kAsbInit) are captured.
  policy_->SetCollector(obs_);
  policy_->Bind(this, frames);
}

BufferManager::~BufferManager() { FlushAll(); }

StatusOr<PageHandle> BufferManager::Fetch(storage::PageId page,
                                          const AccessContext& ctx) {
  // Fast-fail on a page that already failed terminally: no device traffic,
  // no frame churn, the caller gets the same terminal code every time.
  if (!bad_pages_.empty()) {
    if (const auto it = bad_pages_.find(page); it != bad_pages_.end()) {
      return Status(it->second, "page previously failed terminally");
    }
  }
  ++stats_.requests;
  if (auto it = page_table_.find(page); it != page_table_.end()) {
    ++stats_.hits;
    const FrameId f = it->second;
    Frame& frame = frames_[f];
    if (frame.pin_count++ == 0) {
      policy_->SetEvictable(f, false);
    }
    policy_->OnPageAccessed(f, ctx);
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, true);
    }
    return PageHandle(this, f, page);
  }

  ++stats_.misses;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  StatusOr<FrameId> acquired = AcquireFrame(ctx, page);
  if (!acquired.ok()) return acquired.status();
  const FrameId f = *acquired;
  if (Status read = ReadPageWithRecovery(f, page); !read.ok()) {
    return read;
  }
  Frame& frame = frames_[f];
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_.emplace(page, f);
  FillMeta(f);
  policy_->OnPageLoaded(f, page, ctx);
  return PageHandle(this, f, page);
}

StatusOr<PageHandle> BufferManager::New(const AccessContext& ctx) {
  ++stats_.requests;
  ++stats_.misses;  // a new page is never a hit
  StatusOr<FrameId> acquired = AcquireFrame(ctx, storage::kInvalidPageId);
  if (!acquired.ok()) return acquired.status();
  const storage::PageId page = disk_->Allocate();
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  const FrameId f = *acquired;
  std::memset(FrameData(f), 0, page_size_);
  Frame& frame = frames_[f];
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = true;  // must reach disk eventually even if never modified
  page_table_.emplace(page, f);
  FillMeta(f);
  policy_->OnPageLoaded(f, page, ctx);
  return PageHandle(this, f, page);
}

bool BufferManager::Contains(storage::PageId page) const {
  return page_table_.contains(page);
}

std::span<const std::byte> BufferManager::Peek(storage::PageId page) const {
  const auto it = page_table_.find(page);
  if (it == page_table_.end()) return {};
  return {FrameData(it->second), page_size_};
}

void BufferManager::FlushAll() {
  for (FrameId f = 0; f < frames_.size(); ++f) {
    Frame& frame = frames_[f];
    if (frame.page != storage::kInvalidPageId && frame.dirty) {
      disk_->Write(frame.page, {FrameData(f), page_size_});
      frame.dirty = false;
    }
  }
}

storage::PageMeta BufferManager::GetMeta(FrameId frame) const {
  SDB_DCHECK(frame < frames_.size());
  SDB_DCHECK(frames_[frame].page != storage::kInvalidPageId);
  if (!meta_cache_enabled_) {
    ++header_decodes_;
    return storage::ConstPageHeaderView(FrameData(frame)).ToMeta();
  }
  MetaCacheEntry& entry = meta_cache_[frame];
  if (entry.version != meta_versions_[frame]) {
    entry.meta = storage::ConstPageHeaderView(FrameData(frame)).ToMeta();
    entry.version = meta_versions_[frame];
    ++header_decodes_;
  }
  return entry.meta;
}

void BufferManager::FillMeta(FrameId f) {
  // Eager decode at load time: one 64-byte decode per miss keeps every
  // subsequent victim-scan GetMeta a pure array read (0 decodes per
  // eviction in steady state). Not counted in header_decodes(), which
  // tracks decodes performed to *serve* GetMeta.
  ++meta_versions_[f];
  if (!meta_cache_enabled_) return;
  MetaCacheEntry& entry = meta_cache_[f];
  entry.meta = storage::ConstPageHeaderView(FrameData(f)).ToMeta();
  entry.version = meta_versions_[f];
}

std::byte* BufferManager::FrameData(FrameId f) {
  return frame_data_.get() + static_cast<size_t>(f) * page_size_;
}

const std::byte* BufferManager::FrameData(FrameId f) const {
  return frame_data_.get() + static_cast<size_t>(f) * page_size_;
}

StatusOr<FrameId> BufferManager::AcquireFrame(const AccessContext& ctx,
                                              storage::PageId incoming) {
  if (!free_frames_.empty()) {
    const FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  const std::optional<FrameId> victim =
      policy_->ChooseVictim(ctx, incoming);
  if (!victim.has_value()) {
    // A healthy pool with no victim means the caller pinned everything — a
    // bug, and the seed's abort contract. Once quarantine has eaten frames,
    // exhaustion is an operational condition the caller must survive.
    SDB_CHECK_MSG(quarantined_count_ > 0,
                  "no evictable frame: all pages are pinned");
    return Status::ResourceExhausted(
        "no evictable frame: pool shrunk by quarantine");
  }
  const FrameId f = *victim;
  Frame& frame = frames_[f];
  SDB_CHECK_MSG(frame.pin_count == 0, "policy evicted a pinned page");
  SDB_CHECK(frame.page != storage::kInvalidPageId);
  const bool was_dirty = frame.dirty;
  if (frame.dirty) {
    disk_->Write(frame.page, {FrameData(f), page_size_});
    ++stats_.dirty_writebacks;
    frame.dirty = false;
  }
  ++stats_.evictions;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) {
      obs_evictions_->Add();
      if (was_dirty) obs_writebacks_->Add();
      obs::Event event;
      event.kind = obs::EventKind::kEviction;
      event.flag = was_dirty;
      event.frame = f;
      event.query = ctx.query_id;
      event.page = frame.page;
      obs_->events().Push(event);
    }
  }
  page_table_.erase(frame.page);
  policy_->OnPageEvicted(f, frame.page);
  frame.page = storage::kInvalidPageId;
  return f;
}

Status BufferManager::ReadPageWithRecovery(FrameId f, storage::PageId page) {
  uint32_t failures = 0;
  while (true) {
    Status status = disk_->Read(page, {FrameData(f), page_size_});
    if (status.ok() && resilience_.verify_checksums) {
      if (const std::optional<uint32_t> expected = disk_->PageChecksum(page)) {
        const uint32_t actual =
            storage::crc32c::Checksum({FrameData(f), page_size_});
        if (actual != *expected) {
          status = Status::DataLoss("page checksum mismatch");
          ++stats_.io_checksum_mismatches;
          if constexpr (obs::kEnabled) {
            if (obs_ != nullptr) {
              EnsureIoObs();
              obs_io_mismatches_->Add();
            }
          }
        }
      }
    }
    if (status.ok()) {
      if (failures > 0) {
        ++stats_.io_recovered_reads;
        if constexpr (obs::kEnabled) {
          if (obs_ != nullptr) {
            obs::Event event;
            event.kind = obs::EventKind::kIoRecovered;
            event.frame = f;
            event.page = page;
            event.a = failures;
            obs_->events().Push(event);
          }
        }
      }
      return status;
    }
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs::Event event;
        event.kind = obs::EventKind::kIoFault;
        event.flag = status.retryable();
        event.frame = f;
        event.page = page;
        event.a = failures;
        event.b = static_cast<uint64_t>(status.code());
        obs_->events().Push(event);
      }
    }
    if (!status.retryable() || failures >= resilience_.max_read_retries) {
      ++stats_.io_permanent_failures;
      if constexpr (obs::kEnabled) {
        if (obs_ != nullptr) {
          EnsureIoObs();
          obs_io_permanent_->Add();
        }
      }
      bad_pages_.emplace(page, status.code());
      QuarantineFrame(f, page);
      return status;
    }
    ++failures;
    ++stats_.io_read_retries;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        EnsureIoObs();
        obs_io_retries_->Add();
      }
    }
    BackoffBeforeRetry(failures, page);
  }
}

void BufferManager::QuarantineFrame(FrameId f, storage::PageId page) {
  Frame& frame = frames_[f];
  SDB_DCHECK(frame.page == storage::kInvalidPageId);
  SDB_DCHECK(frame.pin_count == 0);
  if (quarantined_count_ < quarantine_cap_) {
    // Out of service: not on the free list, page invalid, so the policies
    // (which only rank valid frames) never see it again and ASB's candidate
    // set adapts over the shrunken pool.
    frame.quarantined = true;
    ++quarantined_count_;
    ++stats_.io_quarantined_frames;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        EnsureIoObs();
        obs_io_quarantined_->Add();
        obs::Event event;
        event.kind = obs::EventKind::kFrameQuarantined;
        event.frame = f;
        event.page = page;
        event.a = quarantined_count_;
        obs_->events().Push(event);
      }
    }
    return;
  }
  // Cap reached: the frame itself is not the failure in this fault model
  // (the device is), so recycle it — a pool that kept shrinking would turn
  // one noisy device region into a self-inflicted outage.
  std::memset(FrameData(f), 0, page_size_);
  free_frames_.push_back(f);
}

void BufferManager::EnsureIoObs() {
  if constexpr (obs::kEnabled) {
    if (obs_ == nullptr || obs_io_retries_ != nullptr) return;
    obs_io_retries_ = obs_->metrics().GetCounter("io.read_retries");
    obs_io_mismatches_ = obs_->metrics().GetCounter("io.checksum_mismatches");
    obs_io_quarantined_ = obs_->metrics().GetCounter("io.quarantined_frames");
    obs_io_permanent_ = obs_->metrics().GetCounter("io.permanent_failures");
  }
}

void BufferManager::BackoffBeforeRetry(uint32_t failures,
                                       storage::PageId page) {
  if (resilience_.backoff_base_us == 0) return;
  // Exponential with full-range deterministic jitter: delay in
  // [base * 2^(n-1) / 2, base * 2^(n-1)], capped at 64x base so a deep
  // retry chain cannot stall a shard for long.
  const uint32_t exp = std::min(failures - 1, 6u);
  const uint64_t ceiling =
      static_cast<uint64_t>(resilience_.backoff_base_us) << exp;
  const uint64_t jitter =
      Mix64(resilience_.backoff_seed ^ Mix64(page) ^ failures) %
      (ceiling / 2 + 1);
  std::this_thread::sleep_for(
      std::chrono::microseconds(ceiling - jitter));
}

void BufferManager::FlushObservability() {
  if constexpr (!obs::kEnabled) return;
  if (obs_ == nullptr) return;
  // Delta-flush: header decodes are the only total the hot path does not
  // feed into the collector eagerly (the counter lives on the GetMeta fast
  // path, where even a guarded increment would distort the A/B overhead
  // bench this subsystem must not perturb).
  obs_->metrics()
      .GetCounter("buffer.header_decodes")
      ->Add(header_decodes_ - flushed_header_decodes_);
  flushed_header_decodes_ = header_decodes_;
}

UnpinStatus BufferManager::Unpin(FrameId f, bool dirty) {
  if (latch_ == nullptr) return UnpinLocked(f, dirty);
  std::lock_guard<std::mutex> lock(*latch_);
  return UnpinLocked(f, dirty);
}

UnpinStatus BufferManager::UnpinLocked(FrameId f, bool dirty) {
  if (f >= frames_.size()) return UnpinStatus::kUnknownFrame;
  if (frames_[f].quarantined) return UnpinStatus::kQuarantined;
  if (frames_[f].page == storage::kInvalidPageId) {
    return UnpinStatus::kUnknownFrame;
  }
  Frame& frame = frames_[f];
  if (frame.pin_count == 0) return UnpinStatus::kNotPinned;
  if (dirty) {
    frame.dirty = true;
    InvalidateMeta(f);
  }
  if (--frame.pin_count == 0) {
    policy_->SetEvictable(f, true);
  }
  return UnpinStatus::kOk;
}

void BufferManager::MarkFrameDirty(FrameId f) {
  const auto mark = [&] {
    frames_[f].dirty = true;
    // The page bytes may have been rewritten in place; drop the cached
    // header so the replacement policies re-rank the page with its current
    // values.
    InvalidateMeta(f);
  };
  if (latch_ == nullptr) {
    mark();
    return;
  }
  std::lock_guard<std::mutex> lock(*latch_);
  mark();
}

}  // namespace sdb::core
