#include "core/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "obs/trace.h"
#include "storage/crc32c.h"

namespace sdb::core {

namespace {
/// splitmix64 finalizer for the backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Concurrent-mode bound on victimless policy scans before AcquireFrame
/// concludes the pool is genuinely exhausted (each scan drains the deferred
/// ring and yields, so lagging unpin events get every chance to land).
constexpr size_t kVictimScanLimit = 1u << 16;
}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = std::exchange(other.manager_, nullptr);
    frame_ = std::exchange(other.frame_, kInvalidFrameId);
    page_id_ = std::exchange(other.page_id_, storage::kInvalidPageId);
  }
  return *this;
}

std::span<std::byte> PageHandle::bytes() {
  SDB_CHECK(valid());
  return {manager_->FrameData(frame_), manager_->page_size_};
}

std::span<const std::byte> PageHandle::bytes() const {
  SDB_CHECK(valid());
  return {manager_->FrameData(frame_), manager_->page_size_};
}

storage::PageHeaderView PageHandle::header() {
  SDB_CHECK(valid());
  return storage::PageHeaderView(manager_->FrameData(frame_));
}

storage::ConstPageHeaderView PageHandle::header() const {
  SDB_CHECK(valid());
  return storage::ConstPageHeaderView(manager_->FrameData(frame_));
}

void PageHandle::MarkDirty() {
  SDB_CHECK(valid());
  manager_->MarkFrameDirty(frame_);
}

void PageHandle::Release() {
  if (manager_ != nullptr) {
    manager_->ReleasePin(frame_);
    manager_ = nullptr;
    frame_ = kInvalidFrameId;
    page_id_ = storage::kInvalidPageId;
  }
}

FrameId PageHandle::Detach() {
  SDB_CHECK(valid());
  const FrameId frame = frame_;
  manager_ = nullptr;
  frame_ = kInvalidFrameId;
  page_id_ = storage::kInvalidPageId;
  return frame;
}

BufferManager::BufferManager(storage::PageDevice* disk, size_t frames,
                             std::unique_ptr<ReplacementPolicy> policy,
                             obs::Collector* collector,
                             ResilienceOptions resilience)
    : disk_(disk),
      policy_(std::move(policy)),
      page_size_(disk->page_size()),
      resilience_(resilience) {
  SDB_CHECK(disk_ != nullptr);
  SDB_CHECK(policy_ != nullptr);
  SDB_CHECK_MSG(frames > 0, "buffer needs at least one frame");
  quarantine_cap_ = resilience_.max_quarantined_frames != 0
                        ? std::min(resilience_.max_quarantined_frames, frames)
                        : frames / 2;
  if constexpr (obs::kEnabled) {
    obs_ = collector;
    if (obs_ != nullptr) {
      obs_evictions_ = obs_->metrics().GetCounter("buffer.evictions");
      obs_writebacks_ = obs_->metrics().GetCounter("buffer.dirty_writebacks");
    }
  }
  frame_data_ = std::make_unique<std::byte[]>(frames * page_size_);
  frames_.assign(frames, Frame{});
  meta_versions_.assign(frames, 0);
  meta_cache_.assign(frames, MetaCacheEntry{});
  free_frames_.reserve(frames);
  // Hand out low frame ids first (cosmetic; makes traces easier to read).
  for (size_t f = frames; f > 0; --f) {
    free_frames_.push_back(static_cast<FrameId>(f - 1));
  }
  // Collector before Bind so bind-time events (kAsbInit) are captured.
  policy_->SetCollector(obs_);
  policy_->Bind(this, frames);
}

BufferManager::~BufferManager() { FlushAll(); }

StatusOr<PageHandle> BufferManager::Fetch(storage::PageId page,
                                          const AccessContext& ctx) {
  if (concurrent_) DrainDeferred();
  // Fast-fail on a page that already failed terminally: no device traffic,
  // no frame churn, the caller gets the same terminal code every time.
  if (!bad_pages_.empty()) {
    if (const auto it = bad_pages_.find(page); it != bad_pages_.end()) {
      return Status(it->second, "page previously failed terminally");
    }
  }
  ++stats_.requests;
  if (auto it = page_table_.find(page); it != page_table_.end()) {
    ++stats_.hits;
    const FrameId f = it->second;
    if (PinIncrement(f) == 0) {
      policy_->SetEvictable(f, false);
    }
    policy_->OnPageAccessed(f, ctx);
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, true);
    }
    return PageHandle(this, f, page);
  }

  ++stats_.misses;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  StatusOr<FrameId> acquired = AcquireFrame(ctx, page);
  if (!acquired.ok()) return acquired.status();
  const FrameId f = *acquired;
  if (Status read = ReadPageWithRecovery(f, page); !read.ok()) {
    if (concurrent_) sync_[f].Unlock();
    return read;
  }
  InstallLoadedPage(f, page, ctx, /*dirty=*/false);
  if (concurrent_) sync_[f].Unlock();
  return PageHandle(this, f, page);
}

StatusOr<PageHandle> BufferManager::New(const AccessContext& ctx) {
  if (concurrent_) DrainDeferred();
  ++stats_.requests;
  ++stats_.misses;  // a new page is never a hit
  StatusOr<FrameId> acquired = AcquireFrame(ctx, storage::kInvalidPageId);
  if (!acquired.ok()) return acquired.status();
  const FrameId f = *acquired;
  const StatusOr<storage::PageId> allocated = disk_->Allocate();
  if (!allocated.ok()) {
    // Disk-full backpressure: hand the acquired frame back and surface the
    // status — the caller's New fails, the pool (and its resident pages)
    // stays intact and keeps serving reads.
    free_frames_.push_back(f);
    if (concurrent_) sync_[f].Unlock();
    return allocated.status();
  }
  const storage::PageId page = *allocated;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  std::memset(FrameData(f), 0, page_size_);
  InstallLoadedPage(f, page, ctx,
                    /*dirty=*/true);  // must reach disk even if never modified
  if (concurrent_) sync_[f].Unlock();
  return PageHandle(this, f, page);
}

StatusOr<PageHandle> BufferManager::NewAt(storage::PageId page,
                                          const AccessContext& ctx) {
  if (concurrent_) DrainDeferred();
  SDB_CHECK_MSG(!page_table_.contains(page), "NewAt of a resident page");
  ++stats_.requests;
  ++stats_.misses;
  StatusOr<FrameId> acquired = AcquireFrame(ctx, page);
  if (!acquired.ok()) return acquired.status();
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  const FrameId f = *acquired;
  std::memset(FrameData(f), 0, page_size_);
  InstallLoadedPage(f, page, ctx, /*dirty=*/true);
  if (concurrent_) sync_[f].Unlock();
  return PageHandle(this, f, page);
}

void BufferManager::InstallLoadedPage(FrameId f, storage::PageId page,
                                      const AccessContext& ctx, bool dirty) {
  Frame& frame = frames_[f];
  frame.page = page;
  frame.dirty = dirty;
  if (dirty) ++dirty_frames_;  // frames outside the page table are clean
  frame.wal_logged = false;
  frame.page_lsn = 0;
  frame.rec_lsn =
      (dirty && wal_ != nullptr) ? wal_->next_lsn() + 1 : 0;
  if (concurrent_) {
    sync_[f].page.store(page, std::memory_order_release);
    concurrent_table_->Insert(page, f);
  }
  // fetch_add, not a store: a doomed optimistic pin (one that will fail its
  // validation and undo itself) may be in flight on this frame, and a plain
  // store would erase its +1 before the matching -1 lands.
  PinIncrement(f);
  page_table_.emplace(page, f);
  FillMeta(f);
  policy_->OnPageLoaded(f, page, ctx);
}

bool BufferManager::Contains(storage::PageId page) const {
  return page_table_.contains(page);
}

std::span<const std::byte> BufferManager::Peek(storage::PageId page) const {
  const auto it = page_table_.find(page);
  if (it == page_table_.end()) return {};
  return {FrameData(it->second), page_size_};
}

void BufferManager::FlushAll() {
  if (wal_ != nullptr && dirty_count() > 0) {
    const Status committed = Commit();
    if (!committed.ok()) {
      // A log that cannot commit (sticky WAL error, full log device) means
      // these frames can never be made durable under the write-ahead rule.
      // Nothing here was acknowledged to a caller, so dropping the frames
      // loses nothing that was promised — while aborting would turn a
      // degraded service into a crash at shutdown.
      return;
    }
  }
  for (FrameId f = 0; f < frames_.size(); ++f) {
    Frame& frame = frames_[f];
    if (frame.page != storage::kInvalidPageId && frame.dirty) {
      // Best-effort: a frame whose device refuses the write stays dirty and
      // is dropped with the pool. Its committed image lives in the log and
      // recovery replays it; quarantine bookkeeping already counted it.
      (void)WriteBackLocked(f, AccessContext{});
    }
  }
}

storage::PageMeta BufferManager::GetMeta(FrameId frame) const {
  SDB_DCHECK(frame < frames_.size());
  SDB_DCHECK(frames_[frame].page != storage::kInvalidPageId);
  if (!meta_cache_enabled_) {
    ++header_decodes_;
    return storage::ConstPageHeaderView(FrameData(frame)).ToMeta();
  }
  MetaCacheEntry& entry = meta_cache_[frame];
  if (entry.version != meta_versions_[frame]) {
    entry.meta = storage::ConstPageHeaderView(FrameData(frame)).ToMeta();
    entry.version = meta_versions_[frame];
    ++header_decodes_;
  }
  return entry.meta;
}

void BufferManager::FillMeta(FrameId f) {
  // Eager decode at load time: one 64-byte decode per miss keeps every
  // subsequent victim-scan GetMeta a pure array read (0 decodes per
  // eviction in steady state). Not counted in header_decodes(), which
  // tracks decodes performed to *serve* GetMeta.
  ++meta_versions_[f];
  if (!meta_cache_enabled_) return;
  MetaCacheEntry& entry = meta_cache_[f];
  entry.meta = storage::ConstPageHeaderView(FrameData(f)).ToMeta();
  entry.version = meta_versions_[f];
}

std::byte* BufferManager::FrameData(FrameId f) {
  return frame_data_.get() + static_cast<size_t>(f) * page_size_;
}

const std::byte* BufferManager::FrameData(FrameId f) const {
  return frame_data_.get() + static_cast<size_t>(f) * page_size_;
}

StatusOr<FrameId> BufferManager::AcquireFrame(const AccessContext& ctx,
                                              storage::PageId incoming) {
  if (!free_frames_.empty()) {
    const FrameId f = free_frames_.back();
    free_frames_.pop_back();
    // A free frame is invisible to optimistic readers (never in the
    // concurrent table), but locking it anyway gives the caller one uniform
    // unlock-publishes-the-bytes protocol.
    if (concurrent_) sync_[f].Lock();
    return f;
  }
  // Bound on no-victim retries in concurrent mode: deferred unpin events
  // can lag the atomic pin counts, so a transiently victimless policy view
  // is drained and re-scanned before the seed's all-pinned abort fires.
  size_t starved_scans = 0;
  // Clean-victim preference: with background write-back enabled and the
  // pool at or below the high watermark, dirty victims are set aside
  // (temporarily unevictable) so the flusher — not the foreground pin
  // path — pays for their device writes.
  std::vector<FrameId> dirty_skipped;
  const auto restore_skipped = [&] {
    for (const FrameId skipped : dirty_skipped) {
      if (frames_[skipped].page != storage::kInvalidPageId &&
          !frames_[skipped].quarantined && PinCount(skipped) == 0) {
        policy_->SetEvictable(skipped, true);
      }
    }
    dirty_skipped.clear();
  };
  bool prefer_clean = writeback_.enabled && !PastHighWatermark();
  for (;;) {
    const std::optional<FrameId> victim = policy_->ChooseVictim(ctx, incoming);
    if (!victim.has_value()) {
      if (!dirty_skipped.empty()) {
        // Everything the policy had left was a dirty frame we set aside:
        // restore the flags and accept a dirty victim after all.
        restore_skipped();
        prefer_clean = false;
        continue;
      }
      if (concurrent_ && ++starved_scans < kVictimScanLimit) {
        DrainDeferred();
        if (starved_scans > 1) {
          // Draining alone did not produce a victim, so heal event-less
          // flag staleness: an aborted optimistic pin (+1 undone by -1,
          // no event) can leave an unpinned frame marked unevictable. By
          // the eager protocol any live-unpinned frame is evictable, and
          // the eviction path re-checks live pins under the frame lock, so
          // over-marking here is safe.
          for (FrameId swept = 0; swept < frames_.size(); ++swept) {
            if (frames_[swept].page != storage::kInvalidPageId &&
                !frames_[swept].quarantined && PinCount(swept) == 0) {
              policy_->SetEvictable(swept, true);
            }
          }
        }
        std::this_thread::yield();
        continue;
      }
      // A healthy pool with no victim means the caller pinned everything — a
      // bug, and the seed's abort contract. Once quarantine has eaten frames,
      // exhaustion is an operational condition the caller must survive.
      SDB_CHECK_MSG(quarantined_count_ > 0,
                    "no evictable frame: all pages are pinned");
      return Status::ResourceExhausted(
          "no evictable frame: pool shrunk by quarantine");
    }
    const FrameId f = *victim;
    Frame& frame = frames_[f];
    if (concurrent_) {
      sync_[f].Lock();
      if (sync_[f].pins.load(std::memory_order_acquire) != 0) {
        // The policy's evictable flag lagged a live optimistic pin (its
        // deferred event is still in flight). Correct the flag, release the
        // frame and rescan — the pin count is the authority.
        sync_[f].Unlock();
        policy_->SetEvictable(f, false);
        version_conflicts_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    } else {
      SDB_CHECK_MSG(frame.pin_count == 0, "policy evicted a pinned page");
    }
    SDB_CHECK(frame.page != storage::kInvalidPageId);
    if (prefer_clean && frame.dirty &&
        dirty_skipped.size() < writeback_.max_clean_scan) {
      if (concurrent_) sync_[f].Unlock();
      policy_->SetEvictable(f, false);
      dirty_skipped.push_back(f);
      continue;
    }
    const bool was_dirty = frame.dirty;
    if (frame.dirty) {
      if (writeback_.enabled) {
        // The flusher should have cleaned this frame before eviction
        // reached it — a synchronous foreground write is the fallback the
        // watermark bench gates on.
        ++stats_.sync_writeback_fallbacks;
        if constexpr (obs::kEnabled) {
          if (obs_sync_fallbacks_ != nullptr) obs_sync_fallbacks_->Add();
        }
      }
      if (Status written = WriteBackLocked(f, ctx); !written.ok()) {
        // The victim keeps its bytes and residency; the fetch that wanted
        // the frame fails instead of evicting a page the device refused.
        if (concurrent_) sync_[f].Unlock();
        restore_skipped();
        return written;
      }
    }
    ++stats_.evictions;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs_evictions_->Add();
        obs::Event event;
        event.kind = obs::EventKind::kEviction;
        event.flag = was_dirty;
        event.frame = f;
        event.query = ctx.query_id;
        event.page = frame.page;
        obs_->events().Push(event);
      }
    }
    page_table_.erase(frame.page);
    if (concurrent_) {
      concurrent_table_->Erase(frame.page);
      sync_[f].page.store(storage::kInvalidPageId, std::memory_order_release);
    }
    policy_->OnPageEvicted(f, frame.page);
    frame.page = storage::kInvalidPageId;
    restore_skipped();
    // In concurrent mode the frame stays version-locked: the caller fills
    // the bytes and unlocks, which is what publishes them to readers.
    return f;
  }
}

Status BufferManager::ReadPageWithRecovery(FrameId f, storage::PageId page) {
  return FinishReadWithRecovery(
      f, page, disk_->Read(page, {FrameData(f), page_size_}));
}

Status BufferManager::FinishReadWithRecovery(FrameId f, storage::PageId page,
                                             Status status) {
  uint32_t failures = 0;
  while (true) {
    if (status.ok() && resilience_.verify_checksums) {
      if (const std::optional<uint32_t> expected = disk_->PageChecksum(page)) {
        const uint32_t actual =
            storage::crc32c::Checksum({FrameData(f), page_size_});
        if (actual != *expected) {
          status = Status::DataLoss("page checksum mismatch");
          ++stats_.io_checksum_mismatches;
          if constexpr (obs::kEnabled) {
            if (obs_ != nullptr) {
              EnsureIoObs();
              obs_io_mismatches_->Add();
            }
          }
        }
      }
    }
    if (status.ok()) {
      if (failures > 0) {
        ++stats_.io_recovered_reads;
        if constexpr (obs::kEnabled) {
          if (obs_ != nullptr) {
            obs::Event event;
            event.kind = obs::EventKind::kIoRecovered;
            event.frame = f;
            event.page = page;
            event.a = failures;
            obs_->events().Push(event);
          }
        }
      }
      return status;
    }
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs::Event event;
        event.kind = obs::EventKind::kIoFault;
        event.flag = status.retryable();
        event.frame = f;
        event.page = page;
        event.a = failures;
        event.b = static_cast<uint64_t>(status.code());
        obs_->events().Push(event);
      }
    }
    if (!status.retryable() || failures >= resilience_.max_read_retries) {
      ++stats_.io_permanent_failures;
      if constexpr (obs::kEnabled) {
        if (obs_ != nullptr) {
          EnsureIoObs();
          obs_io_permanent_->Add();
        }
      }
      bad_pages_.emplace(page, status.code());
      QuarantineFrame(f, page);
      return status;
    }
    ++failures;
    ++stats_.io_read_retries;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        EnsureIoObs();
        obs_io_retries_->Add();
      }
    }
    BackoffBeforeRetry(failures, page);
    status = disk_->Read(page, {FrameData(f), page_size_});
  }
}

void BufferManager::QuarantineFrame(FrameId f, storage::PageId page) {
  Frame& frame = frames_[f];
  SDB_DCHECK(frame.page == storage::kInvalidPageId);
  SDB_DCHECK(PinCount(f) == 0);
  if (quarantined_count_ < quarantine_cap_) {
    // Out of service: not on the free list, page invalid, so the policies
    // (which only rank valid frames) never see it again and ASB's candidate
    // set adapts over the shrunken pool.
    frame.quarantined = true;
    ++quarantined_count_;
    ++stats_.io_quarantined_frames;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        EnsureIoObs();
        obs_io_quarantined_->Add();
        obs::Event event;
        event.kind = obs::EventKind::kFrameQuarantined;
        event.frame = f;
        event.page = page;
        event.a = quarantined_count_;
        obs_->events().Push(event);
      }
    }
    return;
  }
  // Cap reached: the frame itself is not the failure in this fault model
  // (the device is), so recycle it — a pool that kept shrinking would turn
  // one noisy device region into a self-inflicted outage.
  std::memset(FrameData(f), 0, page_size_);
  free_frames_.push_back(f);
}

void BufferManager::EnsureIoObs() {
  if constexpr (obs::kEnabled) {
    if (obs_ == nullptr || obs_io_retries_ != nullptr) return;
    obs_io_retries_ = obs_->metrics().GetCounter("io.read_retries");
    obs_io_mismatches_ = obs_->metrics().GetCounter("io.checksum_mismatches");
    obs_io_quarantined_ = obs_->metrics().GetCounter("io.quarantined_frames");
    obs_io_permanent_ = obs_->metrics().GetCounter("io.permanent_failures");
  }
}

void BufferManager::EnsureWriteObs() {
  if constexpr (obs::kEnabled) {
    if (obs_ == nullptr || obs_io_write_retries_ != nullptr) return;
    obs_io_write_retries_ = obs_->metrics().GetCounter("io.write_retries");
    obs_io_write_quarantined_ =
        obs_->metrics().GetCounter("io.write_quarantined");
  }
}

void BufferManager::QuarantineWriteFailure(FrameId f) {
  Frame& frame = frames_[f];
  const storage::PageId page = frame.page;
  SDB_DCHECK(page != storage::kInvalidPageId);
  SDB_DCHECK(frame.dirty);
  // The page's only current image is its committed WAL record now — the
  // device copy is stale and the device refuses updates. Pin the redo
  // low-water mark so fuzzy-checkpoint truncation can never reclaim that
  // record, and remember the page as bad so the stale device copy is never
  // served to a reader. Recovery (which replays the WAL onto the device
  // region that works, or a replacement) is the only way the page comes
  // back.
  if (frame.rec_lsn != 0 && (write_quarantined_rec_lsn_floor_ == 0 ||
                             frame.rec_lsn < write_quarantined_rec_lsn_floor_)) {
    write_quarantined_rec_lsn_floor_ = frame.rec_lsn;
  }
  bad_pages_.emplace(page, StatusCode::kPermanentFailure);
  page_table_.erase(page);
  if (concurrent_) {
    concurrent_table_->Erase(page);
    sync_[f].page.store(storage::kInvalidPageId, std::memory_order_release);
  }
  policy_->OnPageEvicted(f, page);
  SDB_DCHECK(dirty_frames_ > 0);
  --dirty_frames_;
  frame.dirty = false;
  frame.wal_logged = false;
  frame.page_lsn = 0;
  frame.rec_lsn = 0;
  frame.write_failures = 0;
  frame.page = storage::kInvalidPageId;
  ++stats_.io_write_quarantined;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) {
      EnsureWriteObs();
      obs_io_write_quarantined_->Add();
    }
  }
  QuarantineFrame(f, page);
}

void BufferManager::BackoffBeforeRetry(uint32_t failures,
                                       storage::PageId page) {
  if (resilience_.backoff_base_us == 0) return;
  // Exponential with full-range deterministic jitter: delay in
  // [base * 2^(n-1) / 2, base * 2^(n-1)], capped at 64x base so a deep
  // retry chain cannot stall a shard for long.
  const uint32_t exp = std::min(failures - 1, 6u);
  const uint64_t ceiling =
      static_cast<uint64_t>(resilience_.backoff_base_us) << exp;
  const uint64_t jitter =
      Mix64(resilience_.backoff_seed ^ Mix64(page) ^ failures) %
      (ceiling / 2 + 1);
  std::this_thread::sleep_for(
      std::chrono::microseconds(ceiling - jitter));
}

void BufferManager::FlushObservability() {
  if constexpr (!obs::kEnabled) return;
  if (concurrent_) DrainDeferred();  // totals must include deferred hits
  if (obs_ == nullptr) return;
  // Delta-flush: header decodes are the only total the hot path does not
  // feed into the collector eagerly (the counter lives on the GetMeta fast
  // path, where even a guarded increment would distort the A/B overhead
  // bench this subsystem must not perturb).
  obs_->metrics()
      .GetCounter("buffer.header_decodes")
      ->Add(header_decodes_ - flushed_header_decodes_);
  flushed_header_decodes_ = header_decodes_;
}

UnpinStatus BufferManager::Unpin(FrameId f, bool dirty) {
  if (latch_ == nullptr) {
    if (concurrent_) DrainDeferred();
    return UnpinLocked(f, dirty);
  }
  std::lock_guard<std::mutex> lock(*latch_);
  if (concurrent_) DrainDeferred();
  return UnpinLocked(f, dirty);
}

UnpinStatus BufferManager::UnpinLocked(FrameId f, bool dirty) {
  if (f >= frames_.size()) return UnpinStatus::kUnknownFrame;
  if (frames_[f].quarantined) return UnpinStatus::kQuarantined;
  if (frames_[f].page == storage::kInvalidPageId) {
    return UnpinStatus::kUnknownFrame;
  }
  if (PinCount(f) == 0) return UnpinStatus::kNotPinned;
  if (dirty) {
    NoteDirtyLocked(f);
    InvalidateMeta(f);
  }
  if (PinDecrement(f) == 1) {
    policy_->SetEvictable(f, true);
  }
  return UnpinStatus::kOk;
}

void BufferManager::ReleasePin(FrameId f) {
  if (!concurrent_) {
    const UnpinStatus status = Unpin(f, /*dirty=*/false);
    SDB_CHECK_MSG(status == UnpinStatus::kOk,
                  "handle released a frame it no longer pins");
    return;
  }
  // Latch-free release: the handle owns a pin by construction, so the
  // decrement cannot fail, and holding that pin until here means the
  // frame's page cannot have changed since the fetch.
  const storage::PageId page = sync_[f].page.load(std::memory_order_acquire);
  const uint32_t prev = sync_[f].pins.fetch_sub(1, std::memory_order_acq_rel);
  SDB_DCHECK(prev > 0);
  DeferredEvent event;
  event.frame = f;
  event.page = page;
  event.kind = DeferredEvent::Kind::kUnpin;
  event.edge = prev == 1;
  if (deferred_->TryPush(event)) return;
  // Ring full: apply under the latch, draining the backlog first so the
  // event order the policy sees stays FIFO.
  const auto apply = [&] {
    DrainDeferred();
    ApplyDeferred(event);
  };
  if (latch_ == nullptr) {
    apply();
  } else {
    std::lock_guard<std::mutex> lock(*latch_);
    apply();
  }
}

void BufferManager::MarkFrameDirty(FrameId f) {
  const auto mark = [&] {
    NoteDirtyLocked(f);
    // The page bytes may have been rewritten in place; drop the cached
    // header so the replacement policies re-rank the page with its current
    // values.
    InvalidateMeta(f);
  };
  if (latch_ == nullptr) {
    mark();
    return;
  }
  std::lock_guard<std::mutex> lock(*latch_);
  mark();
}

void BufferManager::NoteDirtyLocked(FrameId f) {
  Frame& frame = frames_[f];
  if (!frame.dirty) ++dirty_frames_;
  frame.dirty = true;
  // Any committed image of this page is stale now; the next commit (or a
  // forced steal at eviction) must re-log the bytes.
  frame.wal_logged = false;
  if (wal_ != nullptr && frame.rec_lsn == 0) {
    frame.rec_lsn = wal_->next_lsn() + 1;  // stored 1-based; 0 means clean
  }
}

Status BufferManager::WriteBackLocked(FrameId f, const AccessContext& ctx,
                                      bool* device_write_failed) {
  Frame& frame = frames_[f];
  if (!frame.dirty) return Status::Ok();
  if (wal_ != nullptr) {
    if (!frame.wal_logged) {
      // Steal of an uncommitted page: commit this one image atomically so
      // the WAL rule (no data-device write without a durable log image)
      // holds. With no undo log the image becomes visible to recovery, which
      // is the documented no-rollback caveat of the redo-only design.
      const wal::PageImageRef image{frame.page, {FrameData(f), page_size_}};
      StatusOr<wal::Lsn> end = wal_->CommitPages(
          {&image, 1}, disk_->page_count(), ctx, /*forced_steal=*/true);
      if (!end.ok()) return end.status();
      frame.page_lsn = *end;
      frame.wal_logged = true;
    }
    if (Status durable = wal_->EnsureDurable(frame.page_lsn); !durable.ok()) {
      return durable;
    }
  }
  // Bounded retry of the data-device write, mirroring the read path:
  // transient faults clear on a fresh draw, everything else fails through.
  Status written = disk_->Write(frame.page, {FrameData(f), page_size_});
  uint32_t failures = 0;
  while (!written.ok() && written.retryable() &&
         failures < resilience_.max_write_retries) {
    ++failures;
    ++stats_.io_write_retries;
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        EnsureWriteObs();
        obs_io_write_retries_->Add();
      }
    }
    BackoffBeforeRetry(failures, frame.page);
    written = disk_->Write(frame.page, {FrameData(f), page_size_});
  }
  if (!written.ok()) {
    if (device_write_failed != nullptr) *device_write_failed = true;
    return written;
  }
  frame.write_failures = 0;
  frame.dirty = false;
  SDB_DCHECK(dirty_frames_ > 0);
  --dirty_frames_;
  frame.rec_lsn = 0;
  ++stats_.dirty_writebacks;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_writebacks_->Add();
  }
  return Status::Ok();
}

Status BufferManager::Commit(const AccessContext& ctx) {
  if (wal_ == nullptr) {
    return Status::Unimplemented("no write-ahead log attached");
  }
  if (concurrent_) DrainDeferred();
  std::vector<wal::PageImageRef> images;
  std::vector<FrameId> dirty;
  CollectDirtyPages(&images, &dirty);
  StatusOr<wal::Lsn> end =
      wal_->CommitPages(images, disk_->page_count(), ctx);
  if (!end.ok()) return end.status();
  MarkFramesCommitted(dirty, *end);
  return Status::Ok();
}

Status BufferManager::Checkpoint(const AccessContext& ctx) {
  if (wal_ == nullptr) {
    return Status::Unimplemented("no write-ahead log attached");
  }
  if (Status committed = Commit(ctx); !committed.ok()) return committed;
  if (Status forced = ForceDirty(ctx); !forced.ok()) return forced;
  StatusOr<wal::Lsn> end = wal_->AppendCheckpoint(disk_->page_count(), ctx);
  return end.ok() ? Status::Ok() : end.status();
}

Status BufferManager::ForceDirty(const AccessContext& ctx) {
  for (FrameId f = 0; f < frames_.size(); ++f) {
    if (frames_[f].page == storage::kInvalidPageId || !frames_[f].dirty) {
      continue;
    }
    if (Status written = WriteBackLocked(f, ctx); !written.ok()) {
      return written;
    }
  }
  return Status::Ok();
}

EvictStatus BufferManager::Evict(storage::PageId page) {
  if (concurrent_) DrainDeferred();
  const auto it = page_table_.find(page);
  if (it == page_table_.end()) return EvictStatus::kNotResident;
  const FrameId f = it->second;
  Frame& frame = frames_[f];
  if (frame.quarantined) return EvictStatus::kQuarantined;
  if (concurrent_) {
    sync_[f].Lock();
    if (sync_[f].pins.load(std::memory_order_acquire) != 0) {
      sync_[f].Unlock();
      return EvictStatus::kPinned;
    }
  } else if (frame.pin_count != 0) {
    return EvictStatus::kPinned;
  }
  if (frame.dirty) {
    if (Status written = WriteBackLocked(f, AccessContext{}); !written.ok()) {
      if (concurrent_) sync_[f].Unlock();
      return EvictStatus::kWriteBackFailed;
    }
  }
  ++stats_.evictions;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_evictions_->Add();
  }
  page_table_.erase(frame.page);
  if (concurrent_) {
    concurrent_table_->Erase(frame.page);
    sync_[f].page.store(storage::kInvalidPageId, std::memory_order_release);
  }
  policy_->OnPageEvicted(f, frame.page);
  frame.page = storage::kInvalidPageId;
  free_frames_.push_back(f);
  if (concurrent_) sync_[f].Unlock();
  return EvictStatus::kOk;
}

size_t BufferManager::dirty_count() const {
  size_t dirty = 0;
  for (const Frame& frame : frames_) {
    if (frame.page != storage::kInvalidPageId && frame.dirty) ++dirty;
  }
  return dirty;
}

uint64_t BufferManager::min_rec_lsn() const {
  // Seeded with the write-quarantine floor: a quarantined page's only
  // current image is in the WAL, so truncation must keep its records.
  uint64_t min_lsn = write_quarantined_rec_lsn_floor_;
  for (const Frame& frame : frames_) {
    if (frame.page == storage::kInvalidPageId || !frame.dirty ||
        frame.rec_lsn == 0) {
      continue;
    }
    if (min_lsn == 0 || frame.rec_lsn < min_lsn) min_lsn = frame.rec_lsn;
  }
  return min_lsn;
}

void BufferManager::CollectDirtyPages(std::vector<wal::PageImageRef>* images,
                                      std::vector<FrameId>* frames) {
  if (concurrent_) DrainDeferred();
  for (FrameId f = 0; f < frames_.size(); ++f) {
    const Frame& frame = frames_[f];
    // wal_logged dirty frames already have their current bytes in a
    // committed image (dirty only survives commit until write-back), so
    // re-imaging them would bloat the log with duplicates.
    if (frame.page == storage::kInvalidPageId || !frame.dirty ||
        frame.wal_logged) {
      continue;
    }
    images->push_back(
        wal::PageImageRef{frame.page, {FrameData(f), page_size_}});
    frames->push_back(f);
  }
}

void BufferManager::MarkFramesCommitted(std::span<const FrameId> frames,
                                        uint64_t end_lsn) {
  for (const FrameId f : frames) {
    Frame& frame = frames_[f];
    frame.wal_logged = true;
    frame.page_lsn = end_lsn;
  }
}

void BufferManager::ConfigureBackgroundWriteback(
    const WritebackOptions& options) {
  SDB_CHECK_MSG(
      !options.enabled || options.low_watermark <= options.high_watermark,
      "low watermark must not exceed the high watermark");
  writeback_ = options;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr && options.enabled && obs_sync_fallbacks_ == nullptr) {
      obs_sync_fallbacks_ =
          obs_->metrics().GetCounter("wal.sync_writeback_fallbacks");
    }
  }
}

size_t BufferManager::HarvestFlushCandidates(size_t max,
                                             std::vector<DirtyCandidate>* out) {
  if (concurrent_) DrainDeferred();
  const size_t before = out->size();
  for (FrameId f = 0; f < frames_.size(); ++f) {
    const Frame& frame = frames_[f];
    // Only wal_logged frames qualify: their current bytes already sit in a
    // durable committed image, so flushing them never forces a steal commit
    // (the flusher's steal-avoidance invariant) and never blocks on the log.
    if (frame.page == storage::kInvalidPageId || !frame.dirty ||
        frame.quarantined || !frame.wal_logged || PinCount(f) != 0) {
      continue;
    }
    out->push_back(
        DirtyCandidate{f, frame.page, frame.rec_lsn, frame.page_lsn});
  }
  // Oldest rec_lsn first: flushing those frames lifts the checkpoint
  // low-water mark (and thus how much log truncation can reclaim) fastest.
  std::sort(out->begin() + before, out->end(),
            [](const DirtyCandidate& a, const DirtyCandidate& b) {
              return a.rec_lsn != b.rec_lsn ? a.rec_lsn < b.rec_lsn
                                            : a.page < b.page;
            });
  if (out->size() - before > max) out->resize(before + max);
  return out->size() - before;
}

StatusOr<size_t> BufferManager::FlushFrames(
    std::span<const DirtyCandidate> candidates, const AccessContext& ctx) {
  if (concurrent_) DrainDeferred();
  // Device writes go out in ascending page-id order so adjacent dirty pages
  // coalesce into sequential device writes (write clustering) regardless of
  // the rec_lsn order the harvest selected them in.
  std::vector<DirtyCandidate> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const DirtyCandidate& a, const DirtyCandidate& b) {
              return a.page < b.page;
            });
  size_t flushed = 0;
  for (const DirtyCandidate& candidate : ordered) {
    const FrameId f = candidate.frame;
    Frame& frame = frames_[f];
    // Re-validate: the frame may have been evicted, re-pinned, or re-dirtied
    // past its logged image (wal_logged cleared) since the harvest. Skipping
    // is always safe — the page stays dirty and a later round, a commit, or
    // the eviction fallback picks it up.
    if (frame.page != candidate.page || !frame.dirty || !frame.wal_logged ||
        frame.quarantined) {
      continue;
    }
    if (concurrent_) {
      // Same protocol as eviction: the version lock fences out optimistic
      // pins (their validation fails while it is held), and the live pin
      // count is re-checked under it — so nobody can be mutating the bytes
      // while they stream to the device.
      sync_[f].Lock();
      if (sync_[f].pins.load(std::memory_order_acquire) != 0 ||
          frame.page != candidate.page || !frame.dirty || !frame.wal_logged) {
        sync_[f].Unlock();
        continue;
      }
    } else if (frame.pin_count != 0) {
      continue;
    }
    bool device_write_failed = false;
    const Status written = WriteBackLocked(f, ctx, &device_write_failed);
    if (!written.ok() && device_write_failed) {
      // The WAL half succeeded (the current bytes sit in a durable image);
      // only the data device refuses this page. A permanent refusal — or a
      // transient one that keeps exhausting whole retry rounds — escalates
      // to write-quarantine, otherwise the coordinator's next round (after
      // its backoff) retries the same frame.
      ++frame.write_failures;
      if (!written.retryable() ||
          frame.write_failures > resilience_.max_write_retries) {
        QuarantineWriteFailure(f);
        if (concurrent_) sync_[f].Unlock();
        continue;  // the page is absorbed, keep flushing the rest
      }
    }
    if (concurrent_) sync_[f].Unlock();
    if (!written.ok()) return written;
    ++flushed;
  }
  return flushed;
}

void BufferManager::EnableConcurrency(const ConcurrentOptions& options) {
  SDB_CHECK_MSG(!concurrent_, "EnableConcurrency is one-shot");
  SDB_CHECK_MSG(page_table_.empty() && stats_.requests == 0,
                "enable concurrency before traffic");
  concurrent_options_ = options;
  sync_ = std::make_unique<FrameSync[]>(frames_.size());
  concurrent_table_ = std::make_unique<ConcurrentPageTable>(frames_.size());
  deferred_ = std::make_unique<AccessEventRing>(
      std::max<size_t>(options.event_ring_capacity, 8));
  if (options.async_reads) {
    storage::AsyncDeviceOptions async = options.async;
    async.queue_depth =
        std::clamp<size_t>(async.queue_depth, 1, frames_.size());
    async_device_ = std::make_unique<storage::AsyncPageDevice>(disk_, async);
    staging_ = std::make_unique<std::byte[]>(async.queue_depth * page_size_);
  }
  concurrent_ = true;
}

std::optional<PageHandle> BufferManager::TryOptimisticFetch(
    storage::PageId page, const AccessContext& ctx) {
  SDB_DCHECK(concurrent_);
  for (uint32_t attempt = 0;
       attempt <= concurrent_options_.max_optimistic_retries; ++attempt) {
    if (attempt > 0) {
      optimistic_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t table_version = concurrent_table_->version();
    const uint32_t f = concurrent_table_->Lookup(page);
    if (f == ConcurrentPageTable::kInvalidFrame) {
      if (concurrent_table_->version() != table_version) {
        // The probe raced a mutation; "not found" can't be trusted.
        version_conflicts_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return std::nullopt;  // genuine miss: the latched path loads it
    }
    FrameSync& sync = sync_[f];
    const uint64_t version = sync.version.load(std::memory_order_acquire);
    if ((version & 1) != 0 ||
        sync.page.load(std::memory_order_acquire) != page) {
      version_conflicts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Pin-then-validate: either the pin lands before an evictor samples the
    // pin count (the evictor then skips this frame), or the evictor locked
    // first and the re-validation below fails before any byte is exposed.
    const uint32_t prev = sync.pins.fetch_add(1, std::memory_order_acq_rel);
    if (sync.version.load(std::memory_order_acquire) != version) {
      sync.pins.fetch_sub(1, std::memory_order_acq_rel);
      version_conflicts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    DeferredEvent event;
    event.frame = f;
    event.page = page;
    event.query = ctx.query_id;
    event.kind = DeferredEvent::Kind::kHit;
    event.edge = prev == 0;
    if (!deferred_->TryPush(event)) {
      // Ring full: undo and let the latched path do this hit eagerly (it
      // drains the ring first, which is what makes room again).
      sync.pins.fetch_sub(1, std::memory_order_acq_rel);
      optimistic_retries_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    optimistic_hits_.fetch_add(1, std::memory_order_relaxed);
    return PageHandle(this, f, page);
  }
  return std::nullopt;
}

void BufferManager::DrainDeferred() {
  if (!concurrent_) return;
  DeferredEvent event;
  while (deferred_->TryPop(&event)) ApplyDeferred(event);
}

void BufferManager::ApplyDeferred(const DeferredEvent& event) {
  // The pin behind the event protected the frame while it was held, but by
  // drain time the pin may be gone and the frame evicted and reloaded; the
  // stats still count (the access happened and was served), while policy
  // callbacks only apply if the frame still holds the event's page. The
  // eviction path's live-pin check is the safety net for any flag staleness
  // this introduces under races; in serial execution the guard never fires
  // and the replay is exactly the eager mutex-path sequence.
  const bool current = event.frame < frames_.size() &&
                       frames_[event.frame].page == event.page;
  switch (event.kind) {
    case DeferredEvent::Kind::kHit:
      ++stats_.requests;
      ++stats_.hits;
      if constexpr (obs::kEnabled) {
        if (obs_ != nullptr) {
          obs_->OnBufferRequest(event.page, event.query, true);
        }
      }
      if (current) {
        if (event.edge) policy_->SetEvictable(event.frame, false);
        policy_->OnPageAccessed(event.frame, AccessContext{event.query});
      }
      break;
    case DeferredEvent::Kind::kUnpin:
      if (current && event.edge) policy_->SetEvictable(event.frame, true);
      break;
  }
}

void BufferManager::FetchBatchLocked(
    std::span<const storage::PageId> pages, const AccessContext& ctx,
    std::vector<StatusOr<PageHandle>>* out) {
  if (!concurrent_ || async_device_ == nullptr || pages.size() < 2) {
    for (const storage::PageId page : pages) out->push_back(Fetch(page, ctx));
    return;
  }
  DrainDeferred();
  const size_t depth = async_device_->queue_depth();
  std::vector<storage::PageId> staged_pages;
  std::unordered_map<storage::PageId, size_t> staged_slot;
  std::unordered_map<storage::PageId, Status> completed;
  std::vector<storage::AsyncPageDevice::Completion> completions;
  size_t begin = 0;
  while (begin < pages.size()) {
    // Segment the batch so its distinct predicted misses fit the queue.
    // Prediction mutates nothing; an element whose residency shifts under
    // our own installs/evictions mid-segment degrades to a sync read with
    // identical accounting.
    staged_pages.clear();
    staged_slot.clear();
    completed.clear();
    size_t end = begin;
    while (end < pages.size()) {
      const storage::PageId page = pages[end];
      const bool predicted_miss = !bad_pages_.contains(page) &&
                                  !page_table_.contains(page) &&
                                  !staged_slot.contains(page);
      if (predicted_miss && staged_pages.size() == depth) break;
      if (predicted_miss) {
        staged_slot.emplace(page, staged_pages.size());
        staged_pages.push_back(page);
      }
      ++end;
    }
    {
      // The device itself carries no tracing; the submit span closes over
      // the whole staging burst. A segment with nothing staged emits none.
      obs::ScopedSpan submit_span(
          staged_pages.empty() ? nullptr : ctx.span,
          obs::SpanKind::kAsyncSubmit);
      submit_span.set_payload(staged_pages.size());
      for (size_t i = 0; i < staged_pages.size(); ++i) {
        async_device_->SubmitRead(
            staged_pages[i], {staging_.get() + i * page_size_, page_size_});
      }
      async_device_->EndBatch();
    }
    // In-order semantic phase: the exact sequential Fetch sequence, with
    // completions harvested out of order as each miss comes due.
    for (size_t i = begin; i < end; ++i) {
      out->push_back(
          FetchOneInBatch(pages[i], ctx, staged_slot, &completed,
                          &completions));
    }
    // Whatever was staged but never consumed (its element turned resident,
    // or failed before the read) is dropped unread — no device read, no
    // fault draw, so counted reads match the sequential replay.
    async_device_->CancelAll();
    begin = end;
  }
}

StatusOr<PageHandle> BufferManager::FetchOneInBatch(
    storage::PageId page, const AccessContext& ctx,
    const std::unordered_map<storage::PageId, size_t>& staged_slot,
    std::unordered_map<storage::PageId, Status>* completed,
    std::vector<storage::AsyncPageDevice::Completion>* completions) {
  if (!bad_pages_.empty()) {
    if (const auto it = bad_pages_.find(page); it != bad_pages_.end()) {
      return Status(it->second, "page previously failed terminally");
    }
  }
  ++stats_.requests;
  if (auto it = page_table_.find(page); it != page_table_.end()) {
    ++stats_.hits;
    const FrameId f = it->second;
    if (PinIncrement(f) == 0) policy_->SetEvictable(f, false);
    policy_->OnPageAccessed(f, ctx);
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, true);
    }
    return PageHandle(this, f, page);
  }
  ++stats_.misses;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) obs_->OnBufferRequest(page, ctx.query_id, false);
  }
  StatusOr<FrameId> acquired = AcquireFrame(ctx, page);
  if (!acquired.ok()) return acquired.status();
  const FrameId f = *acquired;
  Status read;
  const auto slot = staged_slot.find(page);
  if (slot != staged_slot.end()) {
    // The complete span covers the harvest-until-this-page poll loop plus
    // the staging copy and checksum verify — the whole wait for the device.
    obs::ScopedSpan complete_span(ctx.span, obs::SpanKind::kAsyncComplete);
    complete_span.set_page(page);
    while (!completed->contains(page) && async_device_->in_flight() > 0) {
      completions->clear();
      async_device_->PollCompletions(completions, 1);
      for (const auto& completion : *completions) {
        completed->emplace(completion.page, completion.status);
      }
    }
    if (const auto done = completed->find(page); done != completed->end()) {
      complete_span.set_flag(true);
      std::memcpy(FrameData(f),
                  staging_.get() + slot->second * page_size_, page_size_);
      read = FinishReadWithRecovery(f, page, done->second);
    } else {
      read = ReadPageWithRecovery(f, page);
    }
  } else {
    read = ReadPageWithRecovery(f, page);
  }
  if (!read.ok()) {
    sync_[f].Unlock();
    return read;
  }
  InstallLoadedPage(f, page, ctx, /*dirty=*/false);
  sync_[f].Unlock();
  return PageHandle(this, f, page);
}

void PageSource::FetchBatch(std::span<const storage::PageId> pages,
                            const AccessContext& ctx,
                            std::vector<StatusOr<PageHandle>>* out) {
  // Default: a plain sequential loop, byte-identical to the caller issuing
  // the fetches itself. Sources with an async pipeline override this.
  out->reserve(out->size() + pages.size());
  for (const storage::PageId page : pages) out->push_back(Fetch(page, ctx));
}

}  // namespace sdb::core
