#include "core/policy_lru.h"

namespace sdb::core {

std::optional<FrameId> LruPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  return LruScan();
}

}  // namespace sdb::core
