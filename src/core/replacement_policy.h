#ifndef SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_
#define SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/access_context.h"
#include "core/spatial_criterion.h"
#include "obs/collector.h"
#include "storage/page.h"

namespace sdb::core {

/// Index of a buffer frame.
using FrameId = uint32_t;

inline constexpr FrameId kInvalidFrameId = 0xffffffffu;

/// Supplies the *current* metadata of the page resident in a frame. The
/// buffer manager implements this with a per-frame cache of the decoded
/// page header, refreshed on page load and invalidated when the page is
/// marked dirty — so spatial criteria see up-to-date values even when the
/// page is modified in place (callers must MarkDirty after such writes,
/// which they already do to get the page persisted).
class FrameMetaSource {
 public:
  virtual ~FrameMetaSource() = default;
  virtual storage::PageMeta GetMeta(FrameId frame) const = 0;

  /// Version of the frame's metadata: changes (strictly increases) whenever
  /// GetMeta may return a different value than before. Policies use it to
  /// cache values derived from GetMeta across victim scans. The default —
  /// for sources that do not track changes — returns 0, which consumers
  /// must treat as "assume changed".
  virtual uint64_t MetaVersion(FrameId frame) const {
    (void)frame;
    return 0;
  }

  /// Raw per-frame version array (frame-count entries), or nullptr if the
  /// source does not track versions. Victim scans hoist this once per scan
  /// so the per-frame cache check is a plain array read instead of a
  /// virtual call. Must agree with MetaVersion while the scan runs.
  virtual const uint64_t* MetaVersionArray() const { return nullptr; }
};

/// Strategy deciding which resident page leaves the buffer on a miss.
///
/// Lifecycle as driven by BufferManager:
///  * Bind() once, with the frame count and metadata source;
///  * OnPageLoaded() when a page becomes resident in a frame (after a miss
///    or page creation) — the frame is pinned at that moment;
///  * OnPageAccessed() on every buffer hit;
///  * SetEvictable() whenever the frame's pin count transitions 0 <-> >0;
///  * ChooseVictim() on a miss with no free frame — must return an evictable
///    frame, or nullopt if every frame is pinned;
///  * OnPageEvicted() after the victim's page has left the buffer.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Short identifier used in reports ("LRU", "LRU-2", "A", "ASB", ...).
  virtual std::string_view name() const = 0;

  /// Called once before use.
  virtual void Bind(const FrameMetaSource* meta, size_t frame_count) = 0;

  /// Attaches an observability collector (nullptr detaches). Called by
  /// BufferManager before Bind, so policies can emit their configuration
  /// events at bind time. Policies that do not emit anything may ignore it.
  virtual void SetCollector(obs::Collector* collector) { (void)collector; }

  virtual void OnPageLoaded(FrameId frame, storage::PageId page,
                            const AccessContext& ctx) = 0;
  virtual void OnPageAccessed(FrameId frame, const AccessContext& ctx) = 0;
  virtual void SetEvictable(FrameId frame, bool evictable) = 0;
  virtual std::optional<FrameId> ChooseVictim(
      const AccessContext& ctx, storage::PageId incoming) = 0;
  virtual void OnPageEvicted(FrameId frame, storage::PageId page) = 0;
};

/// Shared bookkeeping for all concrete policies: a logical access clock plus
/// per-frame state (validity, evictability, last/load access times, the
/// query id of the most recent reference). Subclasses implement victim
/// selection on top; most do a linear scan over the frames, which is exact,
/// obviously faithful to the paper's definitions, and cheap at realistic
/// buffer sizes.
class PolicyBase : public ReplacementPolicy {
 public:
  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void SetCollector(obs::Collector* collector) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

 protected:
  struct FrameState {
    storage::PageId page = storage::kInvalidPageId;
    bool valid = false;
    bool evictable = false;
    uint64_t load_time = 0;    ///< clock value when the page entered
    uint64_t last_access = 0;  ///< clock value of the latest reference
    uint64_t last_query = AccessContext::kNoQuery;
  };

  /// Monotone logical time; advanced on every load/access.
  uint64_t Tick() { return ++clock_; }
  uint64_t clock() const { return clock_; }

  const FrameMetaSource& meta_source() const { return *meta_; }
  storage::PageMeta MetaOf(FrameId frame) const {
    return meta_->GetMeta(frame);
  }

  /// spatialCrit(page in f), cached across victim scans: recomputed only
  /// when the source reports a new metadata version for the frame, so a
  /// steady-state scan is a flat array walk comparing doubles. A policy
  /// instance must evaluate a single fixed criterion through this helper
  /// (all spatial policies do); mixing criteria would thrash the cache.
  double CachedCriterion(SpatialCriterion crit, FrameId f) const;

  /// Scan-hoisted variant: `version` is the frame's current meta version as
  /// read from MetaVersionArray() (0 if the source is unversioned). Avoids
  /// the per-frame virtual MetaVersion call inside hot victim scans.
  double CachedCriterionAt(SpatialCriterion crit, FrameId f,
                           uint64_t version) const {
    CriterionCacheEntry& entry = crit_cache_[f];
    if (version == 0 || entry.version != version) {
      entry.value = EvaluateCriterion(crit, meta_->GetMeta(f));
      entry.version = version;
      if constexpr (obs::kEnabled) {
        if (obs_ != nullptr) obs_crit_misses_->Add();
      }
    } else if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) obs_crit_hits_->Add();
    }
    return entry.value;
  }

  /// The source's raw version array (one virtual call; hoist per scan).
  const uint64_t* meta_versions() const {
    return meta_->MetaVersionArray();
  }

  /// The value left in the criterion cache by the most recent
  /// CachedCriterionAt call for this frame — no freshness check. Only valid
  /// within one victim scan, after an eager CachedCriterionAt pass over the
  /// eligible frames.
  double CriterionCacheValue(FrameId f) const { return crit_cache_[f].value; }

  size_t frame_count() const { return frames_.size(); }
  FrameState& frame(FrameId f) { return frames_[f]; }
  const FrameState& frame(FrameId f) const { return frames_[f]; }

  /// Least-recently-used evictable frame, or nullopt if none: the universal
  /// fallback and tie-breaker.
  std::optional<FrameId> LruScan() const;

  /// The attached collector (nullptr = observability off).
  obs::Collector* collector() const { return obs_; }

  /// Records how many candidates one victim scan examined (histogram
  /// policy.scan_len). Scan policies call this once per ChooseVictim /
  /// demotion scan; a no-op without a collector.
  void ObserveScanLength(size_t examined) const {
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs_scan_len_->Observe(static_cast<double>(examined));
      }
    }
  }

 private:
  struct CriterionCacheEntry {
    uint64_t version = 0;  ///< 0 = not cached (source versions start at 1)
    double value = 0.0;
  };

  const FrameMetaSource* meta_ = nullptr;
  std::vector<FrameState> frames_;
  mutable std::vector<CriterionCacheEntry> crit_cache_;
  uint64_t clock_ = 0;
  obs::Collector* obs_ = nullptr;
  obs::Histogram* obs_scan_len_ = nullptr;
  obs::Histogram* obs_victim_rank_ = nullptr;
  obs::Counter* obs_crit_hits_ = nullptr;
  obs::Counter* obs_crit_misses_ = nullptr;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_
