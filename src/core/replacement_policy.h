#ifndef SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_
#define SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/access_context.h"
#include "storage/page.h"

namespace sdb::core {

/// Index of a buffer frame.
using FrameId = uint32_t;

inline constexpr FrameId kInvalidFrameId = 0xffffffffu;

/// Supplies the *current* metadata of the page resident in a frame. The
/// buffer manager implements this by decoding the page header straight from
/// frame memory, so spatial criteria always see up-to-date values even when
/// the page was modified in place.
class FrameMetaSource {
 public:
  virtual ~FrameMetaSource() = default;
  virtual storage::PageMeta GetMeta(FrameId frame) const = 0;
};

/// Strategy deciding which resident page leaves the buffer on a miss.
///
/// Lifecycle as driven by BufferManager:
///  * Bind() once, with the frame count and metadata source;
///  * OnPageLoaded() when a page becomes resident in a frame (after a miss
///    or page creation) — the frame is pinned at that moment;
///  * OnPageAccessed() on every buffer hit;
///  * SetEvictable() whenever the frame's pin count transitions 0 <-> >0;
///  * ChooseVictim() on a miss with no free frame — must return an evictable
///    frame, or nullopt if every frame is pinned;
///  * OnPageEvicted() after the victim's page has left the buffer.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Short identifier used in reports ("LRU", "LRU-2", "A", "ASB", ...).
  virtual std::string_view name() const = 0;

  /// Called once before use.
  virtual void Bind(const FrameMetaSource* meta, size_t frame_count) = 0;

  virtual void OnPageLoaded(FrameId frame, storage::PageId page,
                            const AccessContext& ctx) = 0;
  virtual void OnPageAccessed(FrameId frame, const AccessContext& ctx) = 0;
  virtual void SetEvictable(FrameId frame, bool evictable) = 0;
  virtual std::optional<FrameId> ChooseVictim(
      const AccessContext& ctx, storage::PageId incoming) = 0;
  virtual void OnPageEvicted(FrameId frame, storage::PageId page) = 0;
};

/// Shared bookkeeping for all concrete policies: a logical access clock plus
/// per-frame state (validity, evictability, last/load access times, the
/// query id of the most recent reference). Subclasses implement victim
/// selection on top; most do a linear scan over the frames, which is exact,
/// obviously faithful to the paper's definitions, and cheap at realistic
/// buffer sizes.
class PolicyBase : public ReplacementPolicy {
 public:
  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

 protected:
  struct FrameState {
    storage::PageId page = storage::kInvalidPageId;
    bool valid = false;
    bool evictable = false;
    uint64_t load_time = 0;    ///< clock value when the page entered
    uint64_t last_access = 0;  ///< clock value of the latest reference
    uint64_t last_query = AccessContext::kNoQuery;
  };

  /// Monotone logical time; advanced on every load/access.
  uint64_t Tick() { return ++clock_; }
  uint64_t clock() const { return clock_; }

  const FrameMetaSource& meta_source() const { return *meta_; }
  storage::PageMeta MetaOf(FrameId frame) const {
    return meta_->GetMeta(frame);
  }

  size_t frame_count() const { return frames_.size(); }
  FrameState& frame(FrameId f) { return frames_[f]; }
  const FrameState& frame(FrameId f) const { return frames_[f]; }

  /// Least-recently-used evictable frame, or nullopt if none: the universal
  /// fallback and tie-breaker.
  std::optional<FrameId> LruScan() const;

 private:
  const FrameMetaSource* meta_ = nullptr;
  std::vector<FrameState> frames_;
  uint64_t clock_ = 0;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_REPLACEMENT_POLICY_H_
