#ifndef SPATIALBUFFER_CORE_STATUS_H_
#define SPATIALBUFFER_CORE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace sdb::core {

/// Outcome classification of a fallible storage/buffer operation. The codes
/// mirror the subset of canonical codes the I/O stack actually produces;
/// the split that matters operationally is transient (retry may help)
/// versus permanent (retrying is pointless).
enum class StatusCode : uint8_t {
  kOk = 0,
  /// Transient device failure (e.g. an injected transient read error). A
  /// bounded retry with backoff is the right response.
  kUnavailable,
  /// The data read is wrong: checksum mismatch after a torn read or bit
  /// flip. A re-read may return clean data.
  kDataLoss,
  /// Permanent media failure (bad sector); retrying cannot help.
  kPermanentFailure,
  /// No usable frame/shard is left to serve the request (e.g. every frame
  /// of a shard quarantined).
  kResourceExhausted,
  /// The operation is not served by this implementation (e.g. New() on a
  /// read-only service).
  kUnimplemented,
  /// Caller error: the request cannot be satisfied as posed.
  kInvalidArgument,
};

/// Human-readable code name.
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kPermanentFailure:
      return "PERMANENT_FAILURE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
  }
  return "UNKNOWN";
}

/// Result of an operation that can fail without the process being at fault:
/// either OK, or a code plus a message describing what went wrong. The
/// I/O stack (PageDevice::Read, BufferManager::Fetch, BufferService) returns
/// Status instead of aborting, so callers can retry, degrade, or surface the
/// error — SDB_CHECK remains reserved for genuine programming errors.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status PermanentFailure(std::string message) {
    return Status(StatusCode::kPermanentFailure, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Retrying the failed operation may succeed: transient device errors and
  /// corrupt reads (the next read may be clean). Permanent failures and
  /// everything else are not retryable.
  bool retryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDataLoss;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are advisory
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining why there is none. Supports
/// move-only payloads (PageHandle). Accessing value() on an error aborts —
/// check ok() first, or use ValueOrDie() where failure is a harness bug.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (ok) or from a non-ok Status (error).
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    SDB_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SDB_CHECK_MSG(ok(), "StatusOr::value() on error");
    return *value_;
  }
  T& value() & {
    SDB_CHECK_MSG(ok(), "StatusOr::value() on error");
    return *value_;
  }
  T&& value() && {
    SDB_CHECK_MSG(ok(), "StatusOr::value() on error");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// For call sites where an error indicates a bug in the harness itself
  /// (e.g. build-time I/O over a fault-free device): unwraps or aborts with
  /// the error text.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_STATUS_H_
