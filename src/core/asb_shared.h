#ifndef SPATIALBUFFER_CORE_ASB_SHARED_H_
#define SPATIALBUFFER_CORE_ASB_SHARED_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace sdb::core {

/// Cross-shard coordination of ASB's self-tuning candidate-set size `c`
/// (paper Sec. 4.2) for one logical buffer sharded over several AsbPolicy
/// instances.
///
/// Each shard observes overflow hits only for its own pages, so a per-shard
/// `c` would adapt on 1/N of the evidence and the shards would drift apart.
/// Instead all shards share one atomically-published `c`: every shard's
/// adaptation applies its +/-step to the shared value with a clamped CAS,
/// and every shard re-reads the published value at its next demotion scan
/// (i.e. before the eviction decision it parameterizes). The paper's clamps
/// hold globally — 1 <= c <= the smallest shard's main-section capacity —
/// so the published value is usable by every shard unmodified.
///
/// Thread safety: all members are lock-free atomics. Shards call BindShard
/// during service construction (before traffic); Load/ApplyStep run freely
/// under concurrent adaptation races.
class AsbSharedTuning {
 public:
  /// Registers one shard: tightens the global clamp to the shard's main
  /// capacity; the first binder seeds the published value with its initial
  /// candidate size.
  void BindShard(int64_t initial_candidate, int64_t main_capacity) {
    int64_t max = max_candidate_.load(std::memory_order_relaxed);
    while (main_capacity < max &&
           !max_candidate_.compare_exchange_weak(max, main_capacity,
                                                 std::memory_order_acq_rel)) {
    }
    int64_t expected = 0;
    candidate_.compare_exchange_strong(expected, initial_candidate,
                                       std::memory_order_acq_rel);
  }

  /// The published candidate-set size, clamped into the current bounds
  /// (>= 1 even before any shard binds).
  int64_t Load() const {
    const int64_t max = max_candidate_.load(std::memory_order_acquire);
    const int64_t c = candidate_.load(std::memory_order_acquire);
    return std::clamp<int64_t>(c, 1, std::max<int64_t>(1, max));
  }

  /// Applies one adaptation step (direction -1 or +1) and returns the new
  /// published value. The CAS loop makes lost updates impossible, and the
  /// clamp is re-applied on every retry, so racing steps can never push the
  /// value outside the paper's bounds.
  int64_t ApplyStep(int direction, int64_t step) {
    const int64_t max =
        std::max<int64_t>(1, max_candidate_.load(std::memory_order_acquire));
    int64_t current = candidate_.load(std::memory_order_relaxed);
    int64_t next = current;
    do {
      next = std::clamp<int64_t>(current + direction * step, 1, max);
    } while (!candidate_.compare_exchange_weak(current, next,
                                               std::memory_order_acq_rel));
    return next;
  }

  /// Upper clamp: the smallest bound shard's main capacity (INT64_MAX
  /// before the first BindShard).
  int64_t max_candidate() const {
    return max_candidate_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int64_t> candidate_{0};  ///< 0 = no shard bound yet
  std::atomic<int64_t> max_candidate_{INT64_MAX};
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_ASB_SHARED_H_
