#ifndef SPATIALBUFFER_CORE_POLICY_LRU_TYPE_H_
#define SPATIALBUFFER_CORE_POLICY_LRU_TYPE_H_

#include "core/replacement_policy.h"

namespace sdb::core {

/// Type-based LRU (LRU-T, paper Sec. 2.1): pages are ranked by category —
/// object pages are dropped first, then data pages, then directory pages —
/// and plain LRU breaks ties within a category. The assumption is that
/// directory pages are requested far more often than data or object pages.
class LruTypePolicy : public PolicyBase {
 public:
  std::string_view name() const override { return "LRU-T"; }
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

  /// Category rank used for victim selection; lower leaves the buffer first.
  /// Exposed for testing.
  static int CategoryRank(storage::PageType type);
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_LRU_TYPE_H_
