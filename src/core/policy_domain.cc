#include "core/policy_domain.h"

#include <cmath>

#include "common/macros.h"

namespace sdb::core {

DomainPolicy::DomainPolicy(double directory_quota)
    : quota_(directory_quota),
      name_("DOM:" + std::to_string(static_cast<int>(
                         std::lround(directory_quota * 100))) +
            "%") {
  SDB_CHECK(directory_quota >= 0.0 && directory_quota <= 1.0);
}

std::optional<FrameId> DomainPolicy::ChooseVictim(const AccessContext&,
                                                  storage::PageId) {
  // Count resident directory pages to evaluate the quota.
  size_t directory_pages = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid) continue;
    if (MetaOf(f).type == storage::PageType::kDirectory) ++directory_pages;
  }
  const bool over_quota =
      static_cast<double>(directory_pages) >
      quota_ * static_cast<double>(frame_count());

  if (over_quota) {
    if (auto victim = DomainVictim(/*directory=*/true)) return victim;
    return DomainVictim(/*directory=*/false);
  }
  if (auto victim = DomainVictim(/*directory=*/false)) return victim;
  return DomainVictim(/*directory=*/true);
}

std::optional<FrameId> DomainPolicy::DomainVictim(bool directory) const {
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    const bool is_directory =
        MetaOf(f).type == storage::PageType::kDirectory;
    if (is_directory != directory) continue;
    if (!best || s.last_access < best_time) {
      best = f;
      best_time = s.last_access;
    }
  }
  return best;
}

}  // namespace sdb::core
