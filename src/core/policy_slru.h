#ifndef SPATIALBUFFER_CORE_POLICY_SLRU_H_
#define SPATIALBUFFER_CORE_POLICY_SLRU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/replacement_policy.h"
#include "core/spatial_criterion.h"

namespace sdb::core {

/// One eviction candidate as seen by the combined LRU+spatial selection.
struct SpatialLruCandidate {
  FrameId frame = kInvalidFrameId;
  uint64_t last_access = 0;
  double crit = 0.0;
};

/// The combined victim rule of paper Sec. 4.1: restrict to the
/// `candidate_count` least-recently-used entries of `all`, then take the one
/// with the smallest spatial criterion value (ties: least recently used).
/// `all` is reordered in place. Returns kInvalidFrameId if `all` is empty.
FrameId SelectSpatialLruVictim(std::vector<SpatialLruCandidate>& all,
                               size_t candidate_count);

/// Static combination of LRU and a spatial criterion (paper Sec. 4.1,
/// evaluated in Fig. 12 as "SLRU 50%"/"SLRU 25%"):
///   1. LRU computes the candidate set — the `c` least-recently-used
///      evictable pages;
///   2. the spatial criterion picks the victim from the candidate set.
/// The larger the candidate set, the stronger the spatial influence; c = 1
/// degenerates to plain LRU, c = buffer size to the pure spatial policy.
class SlruPolicy : public PolicyBase {
 public:
  /// `candidate_fraction` in (0, 1]: candidate-set size as a fraction of the
  /// buffer, evaluated against the frame count at Bind time (minimum 1).
  SlruPolicy(SpatialCriterion criterion, double candidate_fraction);

  std::string_view name() const override { return name_; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

  size_t candidate_size() const { return candidate_size_; }
  SpatialCriterion criterion() const { return criterion_; }

 private:
  const SpatialCriterion criterion_;
  const double candidate_fraction_;
  std::string name_;
  size_t candidate_size_ = 1;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_SLRU_H_
