#ifndef SPATIALBUFFER_CORE_POLICY_SLRU_H_
#define SPATIALBUFFER_CORE_POLICY_SLRU_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/replacement_policy.h"
#include "core/spatial_criterion.h"

namespace sdb::core {

/// One eviction candidate as seen by the combined LRU+spatial selection.
struct SpatialLruCandidate {
  FrameId frame = kInvalidFrameId;
  uint64_t last_access = 0;
  double crit = 0.0;
};

/// The combined victim rule of paper Sec. 4.1: restrict to the
/// `candidate_count` least-recently-used entries of `all`, then take the one
/// with the smallest spatial criterion value (ties: least recently used).
/// `all` is reordered in place. Returns kInvalidFrameId if `all` is empty.
FrameId SelectSpatialLruVictim(std::vector<SpatialLruCandidate>& all,
                               size_t candidate_count);

/// Recency keys: (last_access, frame) packed into one uint64 so candidate
/// selection partitions a flat array of 8-byte keys instead of structs.
/// Access clocks are unique per resident frame, so ordering by key equals
/// ordering by last_access; the frame bits only disambiguate (and make the
/// order total). Limits: frame < 2^24, last_access < 2^40 — far beyond any
/// buffer size or replay length the harness produces.
inline constexpr unsigned kRecencyKeyFrameBits = 24;

inline uint64_t PackRecencyKey(uint64_t last_access, FrameId frame) {
  return (last_access << kRecencyKeyFrameBits) | frame;
}
inline FrameId UnpackRecencyFrame(uint64_t key) {
  return static_cast<FrameId>(key & ((uint64_t{1} << kRecencyKeyFrameBits) -
                                     1));
}

/// The combined victim rule over packed recency keys: partition the
/// `candidate_count` smallest (least recently used) keys to the front, then
/// take the candidate with the smallest criterion (`crit_of(frame)`; ties:
/// least recently used). `keys` is reordered in place. Returns
/// kInvalidFrameId if `keys` is empty.
template <typename CritFn>
FrameId SelectSpatialLruVictim(std::vector<uint64_t>& keys,
                               size_t candidate_count, CritFn&& crit_of) {
  if (keys.empty()) return kInvalidFrameId;
  const size_t c =
      std::min(std::max<size_t>(candidate_count, 1), keys.size());
  std::nth_element(keys.begin(), keys.begin() + (c - 1), keys.end());
  FrameId best = UnpackRecencyFrame(keys[0]);
  double best_crit = crit_of(best);
  uint64_t best_key = keys[0];
  for (size_t i = 1; i < c; ++i) {
    const FrameId frame = UnpackRecencyFrame(keys[i]);
    const double crit = crit_of(frame);
    if (crit < best_crit || (crit == best_crit && keys[i] < best_key)) {
      best = frame;
      best_crit = crit;
      best_key = keys[i];
    }
  }
  return best;
}

/// Static combination of LRU and a spatial criterion (paper Sec. 4.1,
/// evaluated in Fig. 12 as "SLRU 50%"/"SLRU 25%"):
///   1. LRU computes the candidate set — the `c` least-recently-used
///      evictable pages;
///   2. the spatial criterion picks the victim from the candidate set.
/// The larger the candidate set, the stronger the spatial influence; c = 1
/// degenerates to plain LRU, c = buffer size to the pure spatial policy.
class SlruPolicy : public PolicyBase {
 public:
  /// `candidate_fraction` in (0, 1]: candidate-set size as a fraction of the
  /// buffer, evaluated against the frame count at Bind time (minimum 1).
  SlruPolicy(SpatialCriterion criterion, double candidate_fraction);

  std::string_view name() const override { return name_; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

  size_t candidate_size() const { return candidate_size_; }
  SpatialCriterion criterion() const { return criterion_; }

 private:
  const SpatialCriterion criterion_;
  const double candidate_fraction_;
  std::string name_;
  size_t candidate_size_ = 1;
  std::vector<uint64_t> recency_keys_;  ///< scan scratch, reused
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_SLRU_H_
