#ifndef SPATIALBUFFER_CORE_POLICY_TWO_QUEUE_H_
#define SPATIALBUFFER_CORE_POLICY_TWO_QUEUE_H_

#include <deque>
#include <unordered_set>
#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// The 2Q page-replacement algorithm [Johnson & Shasha, VLDB 1994]
/// (simplified 2Q): an additional baseline from the classic buffer
/// literature, solving the same weakness of LRU that motivates LRU-K —
/// pages touched once should not displace pages with proven reuse.
///
/// Structure: newly faulted pages enter the FIFO queue A1in. Pages evicted
/// from A1in leave only a *ghost* entry (their page id) in A1out. A fault
/// on a page remembered in A1out proves reuse and admits the page into the
/// LRU-managed main queue Am. Victims come from A1in while it exceeds its
/// share (default 25% of the buffer), otherwise from Am.
///
/// Like LRU-K — and unlike ASB — 2Q keeps state (the ghost queue) for pages
/// that are no longer buffered, although bounded.
class TwoQueuePolicy : public PolicyBase {
 public:
  /// `a1in_fraction`: share of the buffer operated FIFO; `a1out_factor`:
  /// ghost-queue capacity as a multiple of the buffer size.
  explicit TwoQueuePolicy(double a1in_fraction = 0.25,
                          double a1out_factor = 0.5);

  std::string_view name() const override { return "2Q"; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
  void OnPageEvicted(FrameId frame, storage::PageId page) override;

  size_t a1in_size() const { return a1in_.size(); }
  size_t ghost_size() const { return a1out_.size(); }
  bool InMainQueue(FrameId f) const { return in_am_[f]; }
  bool IsGhost(storage::PageId page) const { return a1out_.contains(page); }

 private:
  const double a1in_fraction_;
  const double a1out_factor_;
  size_t a1in_capacity_ = 1;
  size_t a1out_capacity_ = 1;
  std::deque<FrameId> a1in_;              // FIFO of probation frames
  std::vector<char> in_am_;               // frame -> member of Am?
  std::deque<storage::PageId> a1out_fifo_;  // ghost ids, FIFO order
  std::unordered_set<storage::PageId> a1out_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_TWO_QUEUE_H_
