#include "core/policy_lru_k.h"

#include "common/macros.h"

namespace sdb::core {

LruKPolicy::LruKPolicy(int k, CorrelationMode mode,
                       uint64_t correlation_period)
    : k_(k),
      mode_(mode),
      period_(correlation_period),
      name_("LRU-" + std::to_string(k) +
            (mode == CorrelationMode::kByPeriod
                 ? ":T" + std::to_string(correlation_period)
                 : "")) {
  SDB_CHECK(k >= 1);
}

void LruKPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  frame_hist_.assign(frame_count, History{});
  retained_.clear();
}

void LruKPolicy::OnPageLoaded(FrameId f, storage::PageId page,
                              const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  History& h = frame_hist_[f];
  h.stamps.clear();
  // Restore the history collected during an earlier residence, if any.
  if (auto it = retained_.find(page); it != retained_.end()) {
    h = std::move(it->second);
    retained_.erase(it);
  }
  // "The value of the current time is added to HIST(p) as new HIST(p,1)."
  h.stamps.insert(h.stamps.begin(), frame(f).last_access);
  if (h.stamps.size() > static_cast<size_t>(k_)) h.stamps.resize(k_);
}

void LruKPolicy::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  const uint64_t previous_query = frame(f).last_query;
  const uint64_t previous_time = frame(f).last_access;
  PolicyBase::OnPageAccessed(f, ctx);
  History& h = frame_hist_[f];
  SDB_DCHECK(!h.stamps.empty());
  if (Correlated(ctx.query_id, frame(f).last_access, previous_query,
                 previous_time)) {
    // Correlated with the most recent reference: HIST(p,1) is refreshed in
    // place, so a burst within one query counts as a single reference.
    h.stamps.front() = frame(f).last_access;
  } else {
    h.stamps.insert(h.stamps.begin(), frame(f).last_access);
    if (h.stamps.size() > static_cast<size_t>(k_)) h.stamps.resize(k_);
  }
}

std::optional<FrameId> LruKPolicy::ChooseVictim(const AccessContext& ctx,
                                        storage::PageId) {
  std::optional<FrameId> best;
  uint64_t best_backward = 0;
  uint64_t best_recent = 0;
  size_t examined = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    ++examined;
    // Only pages whose most recent reference is not correlated with the
    // current access are candidates.
    if (Correlated(ctx.query_id, clock(), s.last_query, s.last_access)) {
      continue;
    }
    const History& h = frame_hist_[f];
    const uint64_t backward = h.Backward(k_);  // 0 == infinitely old
    const uint64_t recent = h.Backward(1);
    if (!best || backward < best_backward ||
        (backward == best_backward && recent < best_recent)) {
      best = f;
      best_backward = backward;
      best_recent = recent;
    }
  }
  ObserveScanLength(examined);
  if (best) return best;
  // Degenerate case the original paper leaves open: every evictable page was
  // just touched by the current query. Fall back to plain LRU.
  return LruScan();
}

void LruKPolicy::OnPageEvicted(FrameId f, storage::PageId page) {
  // Keep the history so a reload continues where the page left off.
  retained_[page] = std::move(frame_hist_[f]);
  frame_hist_[f] = History{};
  PolicyBase::OnPageEvicted(f, page);
}

uint64_t LruKPolicy::HistOf(FrameId f, int i) const {
  SDB_CHECK(i >= 1);
  return frame_hist_[f].Backward(i);
}

}  // namespace sdb::core
