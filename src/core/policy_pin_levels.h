#ifndef SPATIALBUFFER_CORE_POLICY_PIN_LEVELS_H_
#define SPATIALBUFFER_CORE_POLICY_PIN_LEVELS_H_

#include <string>

#include "core/replacement_policy.h"

namespace sdb::core {

/// Level-pinning LRU after Leutenegger & Lopez ("The Effect of Buffering on
/// the Performance of R-Trees", ICDE 1998 — reference [8] of the paper):
/// index pages at or above a fixed tree level are held in the buffer as a
/// block ("pinned"); all remaining pages are managed by plain LRU. LRU-P is
/// the paper's generalization of this policy; having the original makes
/// that lineage measurable.
///
/// Pinning is best-effort: if *only* protected pages are evictable, the
/// least recently used protected page is sacrificed rather than failing.
class PinLevelsPolicy : public PolicyBase {
 public:
  /// Pages with tree level >= `min_protected_level` are protected; e.g. 1
  /// protects the whole directory + nothing else in a tree whose data
  /// pages are level 0... level 1 protects all directory levels.
  explicit PinLevelsPolicy(int min_protected_level);

  std::string_view name() const override { return name_; }
  int min_protected_level() const { return min_protected_level_; }

  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

 private:
  const int min_protected_level_;
  std::string name_;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_PIN_LEVELS_H_
