#ifndef SPATIALBUFFER_CORE_POLICY_CLOCK_H_
#define SPATIALBUFFER_CORE_POLICY_CLOCK_H_

#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// Second-chance (CLOCK) replacement: an approximation of LRU with one
/// reference bit per frame and a sweeping hand. Included as an additional
/// baseline beyond the paper's contenders.
class ClockPolicy : public PolicyBase {
 public:
  std::string_view name() const override { return "CLOCK"; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

 private:
  std::vector<char> referenced_;
  FrameId hand_ = 0;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_CLOCK_H_
