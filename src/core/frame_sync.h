#ifndef SPATIALBUFFER_CORE_FRAME_SYNC_H_
#define SPATIALBUFFER_CORE_FRAME_SYNC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "storage/page.h"

namespace sdb::core {

/// Per-frame synchronization word set of the optimistic latching protocol
/// (BufferManager concurrent mode). One cache line per frame:
///
///  - `version`: the frame's optimistic latch. Even = unlocked; bit 0 set =
///    a writer (eviction, load, quarantine) holds the frame exclusively.
///    Writers lock with a CAS to version|1 and unlock by storing a larger
///    even value, so every exclusive section bumps the stamp and any reader
///    whose before/after loads straddle it re-validates.
///  - `page`: the resident page id, published only inside exclusive
///    sections (readers re-check it after validating the version).
///  - `pins`: the live pin count. Optimistic readers pin with fetch_add and
///    re-validate `version`; the evictor locks `version` first and then
///    refuses any frame whose `pins` is nonzero — one side always sees the
///    other.
struct alignas(64) FrameSync {
  std::atomic<uint64_t> version{0};
  std::atomic<uint32_t> page{storage::kInvalidPageId};
  std::atomic<uint32_t> pins{0};

  bool TryLock() {
    uint64_t v = version.load(std::memory_order_acquire);
    if (v & 1) return false;
    return version.compare_exchange_strong(v, v | 1,
                                           std::memory_order_acq_rel);
  }

  void Lock() {
    while (!TryLock()) {
      // Writers only contend with each other under the shard latch, so this
      // spin resolves within one exclusive section.
    }
  }

  /// Ends the exclusive section, invalidating every optimistic read that
  /// started before it.
  void Unlock() {
    const uint64_t v = version.load(std::memory_order_relaxed);
    SDB_DCHECK((v & 1) != 0);
    version.store(v + 1, std::memory_order_release);
  }
};

/// Lock-free-readable page-id -> frame mapping: open addressing over packed
/// 64-bit atomic slots, `(page + 1) << 32 | frame` (page ids are 32-bit, so
/// the packed key 0 doubles as "empty"). Readers probe without any lock;
/// writers (shard latch held) insert, erase (tombstone) and rebuild, bumping
/// `version` on every mutation so a reader can tell its probe raced a
/// writer and fall back to the latched path. A stale positive is harmless
/// either way — the frame's own version stamp is re-validated before the
/// pin counts — so the table only has to be atomically *word*-consistent,
/// never globally consistent.
class ConcurrentPageTable {
 public:
  explicit ConcurrentPageTable(size_t frames) {
    size_t capacity = 16;
    while (capacity < frames * 2) capacity <<= 1;
    slots_ = std::make_unique<std::atomic<uint64_t>[]>(capacity);
    for (size_t i = 0; i < capacity; ++i) {
      slots_[i].store(kEmpty, std::memory_order_relaxed);
    }
    mask_ = capacity - 1;
  }

  /// Lock-free probe. Returns the mapped frame or kInvalidFrame.
  uint32_t Lookup(storage::PageId page) const {
    const uint64_t key = Key(page);
    for (size_t i = Home(page);; i = (i + 1) & mask_) {
      const uint64_t slot = slots_[i].load(std::memory_order_acquire);
      if (slot == kEmpty) return kInvalidFrame;
      if ((slot >> 32) == (key >> 32)) {
        return static_cast<uint32_t>(slot & 0xffffffffu);
      }
      // Occupied by another page or a tombstone: keep probing.
    }
  }

  /// Writer-side insert (shard latch held). The page must not be present.
  void Insert(storage::PageId page, uint32_t frame) {
    BumpVersion();
    for (size_t i = Home(page);; i = (i + 1) & mask_) {
      const uint64_t slot = slots_[i].load(std::memory_order_relaxed);
      if (slot == kEmpty || slot == kTombstone) {
        if (slot == kTombstone) --tombstones_;
        slots_[i].store(Key(page) | frame, std::memory_order_release);
        ++size_;
        SDB_DCHECK(size_ + tombstones_ <= mask_);  // never fills: cap >= 2x
        return;
      }
      SDB_DCHECK((slot >> 32) != (Key(page) >> 32));
    }
  }

  /// Writer-side erase (shard latch held); no-op if absent. Compacts the
  /// table once tombstones pile up, so probe chains stay short on churny
  /// (eviction-heavy) shards.
  void Erase(storage::PageId page) {
    BumpVersion();
    const uint64_t key = Key(page);
    for (size_t i = Home(page);; i = (i + 1) & mask_) {
      const uint64_t slot = slots_[i].load(std::memory_order_relaxed);
      if (slot == kEmpty) return;
      if ((slot >> 32) == (key >> 32)) {
        slots_[i].store(kTombstone, std::memory_order_release);
        --size_;
        ++tombstones_;
        if (tombstones_ > (mask_ + 1) / 4) Rebuild();
        return;
      }
    }
  }

  /// Mutation counter, bumped at the start of every writer mutation.
  /// Readers sample it before and after a probe: a change means the probe
  /// raced a writer and its negative result cannot be trusted.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  size_t size() const { return size_; }

  static constexpr uint32_t kInvalidFrame = 0xffffffffu;

 private:
  static constexpr uint64_t kEmpty = 0;
  // An impossible key (page kInvalidPageId is never inserted) with frame
  // field 0: marks a vacated slot that probes must walk through.
  static constexpr uint64_t kTombstone =
      (static_cast<uint64_t>(storage::kInvalidPageId) + 1) << 32;

  static uint64_t Key(storage::PageId page) {
    return (static_cast<uint64_t>(page) + 1) << 32;
  }

  size_t Home(storage::PageId page) const {
    uint64_t x = static_cast<uint64_t>(page) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31)) & mask_;
  }

  void BumpVersion() {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  void Rebuild() {
    std::vector<uint64_t> live;
    live.reserve(size_);
    for (size_t i = 0; i <= mask_; ++i) {
      const uint64_t slot = slots_[i].load(std::memory_order_relaxed);
      if (slot != kEmpty && slot != kTombstone) live.push_back(slot);
      slots_[i].store(kEmpty, std::memory_order_release);
    }
    tombstones_ = 0;
    size_ = 0;
    for (const uint64_t slot : live) {
      const storage::PageId page =
          static_cast<storage::PageId>((slot >> 32) - 1);
      Insert(page, static_cast<uint32_t>(slot & 0xffffffffu));
    }
  }

  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> version_{0};
  // Writer-only bookkeeping (shard latch held).
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

/// One deferred policy/stats event from the latch-free path. Optimistic
/// hits and unpins cannot call into the (single-threaded) replacement
/// policy, so they record what happened here and the next exclusive section
/// replays the ring in FIFO order before reading or mutating policy state —
/// in serial execution that makes the policy's view bit-identical to the
/// eager mutex path.
struct DeferredEvent {
  enum class Kind : uint8_t { kHit, kUnpin };

  uint32_t frame = 0;
  storage::PageId page = storage::kInvalidPageId;
  uint64_t query = 0;
  Kind kind = Kind::kHit;
  /// kHit: this pin took the frame 0 -> 1 (SetEvictable(false) edge).
  /// kUnpin: this release took it 1 -> 0 (SetEvictable(true) edge).
  bool edge = false;
};

/// Bounded MPMC ring of DeferredEvents (Vyukov queue): producers are the
/// latch-free hit/unpin paths on any thread, the consumer is whichever
/// thread holds the shard latch. TryPush failing (ring full) is a signal to
/// take the exclusive path instead, so the ring bounds deferral lag by
/// construction.
class AccessEventRing {
 public:
  explicit AccessEventRing(size_t capacity) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  bool TryPush(const DeferredEvent& event) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.event = event;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryPop(DeferredEvent* event) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *event = cell.event;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // Empty, or the next slot is claimed but not yet published; FIFO
        // draining stops here either way (never skip over a straggler).
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    DeferredEvent event;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_FRAME_SYNC_H_
