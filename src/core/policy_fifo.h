#ifndef SPATIALBUFFER_CORE_POLICY_FIFO_H_
#define SPATIALBUFFER_CORE_POLICY_FIFO_H_

#include "core/replacement_policy.h"

namespace sdb::core {

/// First-in-first-out replacement: the victim is the evictable page that has
/// been resident longest, regardless of how often it was referenced. Not one
/// of the paper's contenders, but the strategy used inside the ASB overflow
/// buffer, and a useful lower-bound baseline.
class FifoPolicy : public PolicyBase {
 public:
  std::string_view name() const override { return "FIFO"; }
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_FIFO_H_
