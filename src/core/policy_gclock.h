#ifndef SPATIALBUFFER_CORE_POLICY_GCLOCK_H_
#define SPATIALBUFFER_CORE_POLICY_GCLOCK_H_

#include <vector>

#include "core/replacement_policy.h"

namespace sdb::core {

/// Generalized CLOCK (GCLOCK): each frame carries a reference *counter*
/// instead of CLOCK's single bit. Hits increment the counter (up to a cap);
/// the sweeping hand decrements and evicts at zero, so frequently used
/// pages survive several sweeps. A classic frequency-aware baseline from
/// the buffer-management literature surveyed by Effelsberg/Härder.
class GClockPolicy : public PolicyBase {
 public:
  /// `initial_count` is granted on load, `max_count` caps the counter.
  explicit GClockPolicy(int initial_count = 1, int max_count = 7);

  std::string_view name() const override { return "GCLOCK"; }

  void Bind(const FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(FrameId frame, storage::PageId page,
                    const AccessContext& ctx) override;
  void OnPageAccessed(FrameId frame, const AccessContext& ctx) override;
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

  int CountOf(FrameId f) const { return counters_[f]; }

 private:
  const int initial_count_;
  const int max_count_;
  std::vector<int> counters_;
  FrameId hand_ = 0;
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_GCLOCK_H_
