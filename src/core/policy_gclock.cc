#include "core/policy_gclock.h"

#include "common/macros.h"

namespace sdb::core {

GClockPolicy::GClockPolicy(int initial_count, int max_count)
    : initial_count_(initial_count), max_count_(max_count) {
  SDB_CHECK(initial_count >= 0 && max_count >= initial_count);
}

void GClockPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  counters_.assign(frame_count, 0);
  hand_ = 0;
}

void GClockPolicy::OnPageLoaded(FrameId f, storage::PageId page,
                                const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  counters_[f] = initial_count_;
}

void GClockPolicy::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  PolicyBase::OnPageAccessed(f, ctx);
  if (counters_[f] < max_count_) ++counters_[f];
}

std::optional<FrameId> GClockPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  const size_t n = frame_count();
  // Enough sweeps to drain the largest possible counter.
  for (size_t step = 0; step < n * static_cast<size_t>(max_count_ + 1);
       ++step) {
    const FrameId f = hand_;
    hand_ = static_cast<FrameId>((hand_ + 1) % n);
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    if (counters_[f] > 0) {
      --counters_[f];
    } else {
      return f;
    }
  }
  return LruScan();
}

}  // namespace sdb::core
