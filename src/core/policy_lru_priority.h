#ifndef SPATIALBUFFER_CORE_POLICY_LRU_PRIORITY_H_
#define SPATIALBUFFER_CORE_POLICY_LRU_PRIORITY_H_

#include "core/replacement_policy.h"

namespace sdb::core {

/// Priority-based LRU (LRU-P, paper Sec. 2.1): the generalization of LRU-T.
/// Every page has a priority — the higher, the longer it should stay. Object
/// pages have priority 0; index pages have priority 1 + their tree level, so
/// the root carries the highest priority. This generalizes pinning the top
/// levels of the SAM in the buffer (Leutenegger & Lopez). Victim: the least
/// recently used page among those of minimal priority.
class LruPriorityPolicy : public PolicyBase {
 public:
  std::string_view name() const override { return "LRU-P"; }
  std::optional<FrameId> ChooseVictim(const AccessContext& ctx,
                                      storage::PageId incoming) override;

  /// Priority assignment; exposed for testing.
  static int Priority(const storage::PageMeta& meta);
};

}  // namespace sdb::core

#endif  // SPATIALBUFFER_CORE_POLICY_LRU_PRIORITY_H_
