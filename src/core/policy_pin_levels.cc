#include "core/policy_pin_levels.h"

#include "common/macros.h"

namespace sdb::core {

PinLevelsPolicy::PinLevelsPolicy(int min_protected_level)
    : min_protected_level_(min_protected_level),
      name_("PIN-" + std::to_string(min_protected_level)) {
  SDB_CHECK(min_protected_level >= 1);
}

std::optional<FrameId> PinLevelsPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    const storage::PageMeta meta = MetaOf(f);
    const bool protected_page =
        (meta.type == storage::PageType::kDirectory ||
         meta.type == storage::PageType::kData) &&
        meta.level >= min_protected_level_;
    if (protected_page) continue;
    if (!best || s.last_access < best_time) {
      best = f;
      best_time = s.last_access;
    }
  }
  if (best) return best;
  // Everything evictable is protected: degrade gracefully to LRU.
  return LruScan();
}

}  // namespace sdb::core
