#include "core/replacement_policy.h"

#include "common/macros.h"

namespace sdb::core {

void PolicyBase::Bind(const FrameMetaSource* meta, size_t frame_count) {
  SDB_CHECK(meta != nullptr);
  SDB_CHECK(frame_count > 0);
  meta_ = meta;
  frames_.assign(frame_count, FrameState{});
  crit_cache_.assign(frame_count, CriterionCacheEntry{});
  clock_ = 0;
}

double PolicyBase::CachedCriterion(SpatialCriterion crit, FrameId f) const {
  return CachedCriterionAt(crit, f, meta_->MetaVersion(f));
}

void PolicyBase::SetCollector(obs::Collector* collector) {
  if constexpr (!obs::kEnabled) return;
  obs_ = collector;
  if (obs_ == nullptr) return;
  // Buckets cover candidate counts / recency ranks up to any realistic
  // buffer size; the overflow bucket absorbs the rest.
  static constexpr double kCountBounds[] = {1,   2,   4,    8,    16,  32,
                                            64,  128, 256,  512,  1024,
                                            2048, 4096, 8192};
  obs_scan_len_ = obs_->metrics().GetHistogram("policy.scan_len",
                                               kCountBounds);
  obs_victim_rank_ =
      obs_->metrics().GetHistogram("policy.victim_recency_rank",
                                   kCountBounds);
  obs_crit_hits_ = obs_->metrics().GetCounter("policy.crit_cache_hits");
  obs_crit_misses_ = obs_->metrics().GetCounter("policy.crit_cache_misses");
}

void PolicyBase::OnPageLoaded(FrameId f, storage::PageId page,
                              const AccessContext& ctx) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_CHECK_MSG(!s.valid, "frame loaded twice without eviction");
  s.page = page;
  s.valid = true;
  s.evictable = false;  // loaded pages are pinned by the caller
  s.load_time = Tick();
  s.last_access = s.load_time;
  s.last_query = ctx.query_id;
}

void PolicyBase::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_DCHECK(s.valid);
  s.last_access = Tick();
  s.last_query = ctx.query_id;
}

void PolicyBase::SetEvictable(FrameId f, bool evictable) {
  SDB_DCHECK(f < frames_.size());
  SDB_DCHECK(frames_[f].valid);
  frames_[f].evictable = evictable;
}

void PolicyBase::OnPageEvicted(FrameId f, storage::PageId page) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_CHECK(s.valid);
  SDB_CHECK(s.page == page);
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr) {
      // Victim recency rank: how many currently evictable pages are colder
      // than the victim (0 = the LRU choice). O(frames), only when a
      // collector is attached.
      size_t rank = 0;
      for (const FrameState& other : frames_) {
        if (other.valid && other.evictable &&
            other.last_access < s.last_access) {
          ++rank;
        }
      }
      obs_victim_rank_->Observe(static_cast<double>(rank));
    }
  }
  s = FrameState{};
}

std::optional<FrameId> PolicyBase::LruScan() const {
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  size_t examined = 0;
  for (FrameId f = 0; f < frames_.size(); ++f) {
    const FrameState& s = frames_[f];
    if (!s.valid || !s.evictable) continue;
    ++examined;
    if (!best || s.last_access < best_time) {
      best = f;
      best_time = s.last_access;
    }
  }
  ObserveScanLength(examined);
  return best;
}

}  // namespace sdb::core
