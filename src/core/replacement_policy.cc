#include "core/replacement_policy.h"

#include "common/macros.h"

namespace sdb::core {

void PolicyBase::Bind(const FrameMetaSource* meta, size_t frame_count) {
  SDB_CHECK(meta != nullptr);
  SDB_CHECK(frame_count > 0);
  meta_ = meta;
  frames_.assign(frame_count, FrameState{});
  crit_cache_.assign(frame_count, CriterionCacheEntry{});
  clock_ = 0;
}

double PolicyBase::CachedCriterion(SpatialCriterion crit, FrameId f) const {
  return CachedCriterionAt(crit, f, meta_->MetaVersion(f));
}

void PolicyBase::OnPageLoaded(FrameId f, storage::PageId page,
                              const AccessContext& ctx) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_CHECK_MSG(!s.valid, "frame loaded twice without eviction");
  s.page = page;
  s.valid = true;
  s.evictable = false;  // loaded pages are pinned by the caller
  s.load_time = Tick();
  s.last_access = s.load_time;
  s.last_query = ctx.query_id;
}

void PolicyBase::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_DCHECK(s.valid);
  s.last_access = Tick();
  s.last_query = ctx.query_id;
}

void PolicyBase::SetEvictable(FrameId f, bool evictable) {
  SDB_DCHECK(f < frames_.size());
  SDB_DCHECK(frames_[f].valid);
  frames_[f].evictable = evictable;
}

void PolicyBase::OnPageEvicted(FrameId f, storage::PageId page) {
  SDB_DCHECK(f < frames_.size());
  FrameState& s = frames_[f];
  SDB_CHECK(s.valid);
  SDB_CHECK(s.page == page);
  s = FrameState{};
}

std::optional<FrameId> PolicyBase::LruScan() const {
  std::optional<FrameId> best;
  uint64_t best_time = 0;
  for (FrameId f = 0; f < frames_.size(); ++f) {
    const FrameState& s = frames_[f];
    if (!s.valid || !s.evictable) continue;
    if (!best || s.last_access < best_time) {
      best = f;
      best_time = s.last_access;
    }
  }
  return best;
}

}  // namespace sdb::core
