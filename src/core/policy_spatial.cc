#include "core/policy_spatial.h"

namespace sdb::core {

SpatialPolicy::SpatialPolicy(SpatialCriterion criterion)
    : criterion_(criterion) {}

std::optional<FrameId> SpatialPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  std::optional<FrameId> best;
  double best_crit = 0.0;
  uint64_t best_time = 0;
  size_t examined = 0;
  const uint64_t* versions = meta_versions();  // one virtual call per scan
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    ++examined;
    const double crit =
        CachedCriterionAt(criterion_, f, versions ? versions[f] : 0);
    if (!best || crit < best_crit ||
        (crit == best_crit && s.last_access < best_time)) {
      best = f;
      best_crit = crit;
      best_time = s.last_access;
    }
  }
  ObserveScanLength(examined);
  return best;
}

}  // namespace sdb::core
