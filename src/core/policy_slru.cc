#include "core/policy_slru.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace sdb::core {

FrameId SelectSpatialLruVictim(std::vector<SpatialLruCandidate>& all,
                               size_t candidate_count) {
  if (all.empty()) return kInvalidFrameId;
  const size_t c = std::min(std::max<size_t>(candidate_count, 1), all.size());
  // Step 1 (LRU): move the c least-recently-used entries to the front.
  std::nth_element(all.begin(), all.begin() + (c - 1), all.end(),
                   [](const SpatialLruCandidate& a,
                      const SpatialLruCandidate& b) {
                     return a.last_access < b.last_access;
                   });
  // Step 2 (spatial): smallest criterion among the candidates, LRU ties.
  const SpatialLruCandidate* best = &all[0];
  for (size_t i = 1; i < c; ++i) {
    const SpatialLruCandidate& cand = all[i];
    if (cand.crit < best->crit ||
        (cand.crit == best->crit && cand.last_access < best->last_access)) {
      best = &cand;
    }
  }
  return best->frame;
}

SlruPolicy::SlruPolicy(SpatialCriterion criterion, double candidate_fraction)
    : criterion_(criterion), candidate_fraction_(candidate_fraction) {
  SDB_CHECK(candidate_fraction > 0.0 && candidate_fraction <= 1.0);
  name_ = "SLRU(" + std::string(CriterionName(criterion)) + "," +
          std::to_string(static_cast<int>(std::lround(
              candidate_fraction * 100))) +
          "%)";
}

void SlruPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  candidate_size_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(candidate_fraction_ *
                                         static_cast<double>(frame_count))));
}

std::optional<FrameId> SlruPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  recency_keys_.clear();
  recency_keys_.reserve(frame_count());
  const uint64_t* versions = meta_versions();  // one virtual call per scan
  for (FrameId f = 0; f < frame_count(); ++f) {
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    // Eager warm pass: refreshes the frame's cached criterion if stale, so
    // the candidate loop below reads plain cached values.
    CachedCriterionAt(criterion_, f, versions ? versions[f] : 0);
    recency_keys_.push_back(PackRecencyKey(s.last_access, f));
  }
  ObserveScanLength(recency_keys_.size());
  const FrameId victim = SelectSpatialLruVictim(
      recency_keys_, candidate_size_,
      [this](FrameId f) { return CriterionCacheValue(f); });
  if (victim == kInvalidFrameId) return std::nullopt;
  return victim;
}

}  // namespace sdb::core
