#include "core/policy_clock.h"

namespace sdb::core {

void ClockPolicy::Bind(const FrameMetaSource* meta, size_t frame_count) {
  PolicyBase::Bind(meta, frame_count);
  referenced_.assign(frame_count, 0);
  hand_ = 0;
}

void ClockPolicy::OnPageLoaded(FrameId f, storage::PageId page,
                               const AccessContext& ctx) {
  PolicyBase::OnPageLoaded(f, page, ctx);
  referenced_[f] = 1;
}

void ClockPolicy::OnPageAccessed(FrameId f, const AccessContext& ctx) {
  PolicyBase::OnPageAccessed(f, ctx);
  referenced_[f] = 1;
}

std::optional<FrameId> ClockPolicy::ChooseVictim(const AccessContext&,
                                        storage::PageId) {
  const size_t n = frame_count();
  // Two full sweeps suffice: the first clears reference bits, the second
  // must find a victim if any evictable frame exists.
  for (size_t step = 0; step < 2 * n; ++step) {
    const FrameId f = hand_;
    hand_ = static_cast<FrameId>((hand_ + 1) % n);
    const FrameState& s = frame(f);
    if (!s.valid || !s.evictable) continue;
    if (referenced_[f]) {
      referenced_[f] = 0;
    } else {
      return f;
    }
  }
  return LruScan();  // degenerate case: everything referenced and pinned mix
}

}  // namespace sdb::core
