#include "svc/buffer_service.h"

#include <utility>

#include "common/macros.h"
#include "core/policy_asb.h"
#include "core/policy_factory.h"

namespace sdb::svc {

namespace {

/// splitmix64 finalizer: page ids are sequential on disk, so a plain modulo
/// would put whole subtrees on one shard; the mix spreads them evenly.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixPageId(uint64_t x) { return Mix64(x); }

/// Capacity split: total/count per shard, remainder to the lowest-numbered
/// shards one frame each.
size_t SplitFrames(size_t total, size_t count, size_t shard) {
  return total / count + (shard < total % count ? 1 : 0);
}

}  // namespace

BufferService::BufferService(const storage::DiskManager& disk,
                             const BufferServiceConfig& config)
    : total_frames_(config.total_frames),
      policy_spec_(config.policy_spec),
      collect_metrics_(config.collect_metrics && obs::kEnabled) {
  SDB_CHECK_MSG(config.shard_count > 0, "service needs at least one shard");
  SDB_CHECK_MSG(config.total_frames >= config.shard_count,
                "fewer frames than shards: some shard would be empty");
  shards_.reserve(config.shard_count);
  for (size_t s = 0; s < config.shard_count; ++s) {
    auto shard = std::make_unique<Shard>(disk);
    if (collect_metrics_) {
      obs::CollectorOptions options;
      options.event_capacity = 0;  // metrics only; no per-shard event ring
      shard->collector = std::make_unique<obs::Collector>(options);
    }
    auto policy = core::CreatePolicy(config.policy_spec);
    if (config.share_asb_tuning) {
      // Attach before the buffer constructs (construction binds the policy,
      // and Bind is where the shard registers with the global tuning).
      if (auto* asb = dynamic_cast<core::AsbPolicy*>(policy.get())) {
        asb->set_shared_tuning(&asb_tuning_);
        asb_shared_ = true;
      }
    }
    storage::PageDevice* device = &shard->view;
    if (config.fault_profile.enabled()) {
      // Each shard draws from an independent but seed-derived stream: the
      // whole service replays for a fixed profile seed, yet shards do not
      // mirror each other's fault pattern.
      storage::FaultProfile profile = config.fault_profile;
      profile.seed = Mix64(profile.seed ^ (static_cast<uint64_t>(s) + 1));
      shard->fault = std::make_unique<storage::FaultInjectingDevice>(
          shard->view, std::move(profile));
      device = shard->fault.get();
    }
    shard->buffer = std::make_unique<core::BufferManager>(
        device, SplitFrames(total_frames_, config.shard_count, s),
        std::move(policy), shard->collector.get(), config.resilience);
    shard->buffer->set_latch(&shard->latch);
    shards_.push_back(std::move(shard));
  }
}

BufferService::~BufferService() = default;

size_t BufferService::ShardOf(storage::PageId page) const {
  return static_cast<size_t>(MixPageId(static_cast<uint64_t>(page)) %
                             shards_.size());
}

size_t BufferService::ShardFrames(size_t shard) const {
  return SplitFrames(total_frames_, shards_.size(), shard);
}

std::unique_lock<std::mutex> BufferService::LockShard(Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.latch, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.latch_waits.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  shard.latch_acquires.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

core::StatusOr<core::PageHandle> BufferService::Fetch(
    storage::PageId page, const core::AccessContext& ctx) {
  Shard& shard = *shards_[ShardOf(page)];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.buffer->Fetch(page, ctx);
}

core::StatusOr<core::PageHandle> BufferService::New(
    const core::AccessContext&) {
  return core::Status::Unimplemented(
      "BufferService is read-only: New() is not served");
}

std::span<const std::byte> BufferService::Peek(storage::PageId page) const {
  return shards_[ShardOf(page)]->buffer->Peek(page);
}

bool BufferService::Contains(storage::PageId page) const {
  Shard& shard = *shards_[ShardOf(page)];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.buffer->Contains(page);
}

ShardStats BufferService::StatsOfShard(size_t s) const {
  Shard& shard = *shards_[s];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  ShardStats stats;
  stats.buffer = shard.buffer->stats();
  stats.io = shard.view.stats();
  stats.latch_waits = shard.latch_waits.load(std::memory_order_relaxed);
  stats.latch_acquires = shard.latch_acquires.load(std::memory_order_relaxed);
  stats.quarantined_frames = shard.buffer->quarantined_count();
  stats.bad_pages = shard.buffer->bad_page_count();
  stats.usable_frames = shard.buffer->frame_count() - stats.quarantined_frames;
  return stats;
}

ShardStats BufferService::AggregateStats() const {
  ShardStats total;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats one = StatsOfShard(s);
    total.buffer.requests += one.buffer.requests;
    total.buffer.hits += one.buffer.hits;
    total.buffer.misses += one.buffer.misses;
    total.buffer.evictions += one.buffer.evictions;
    total.buffer.dirty_writebacks += one.buffer.dirty_writebacks;
    total.buffer.io_read_retries += one.buffer.io_read_retries;
    total.buffer.io_checksum_mismatches += one.buffer.io_checksum_mismatches;
    total.buffer.io_recovered_reads += one.buffer.io_recovered_reads;
    total.buffer.io_permanent_failures += one.buffer.io_permanent_failures;
    total.buffer.io_quarantined_frames += one.buffer.io_quarantined_frames;
    total.io.reads += one.io.reads;
    total.io.writes += one.io.writes;
    total.io.sequential_reads += one.io.sequential_reads;
    total.io.sequential_writes += one.io.sequential_writes;
    total.latch_waits += one.latch_waits;
    total.latch_acquires += one.latch_acquires;
    total.quarantined_frames += one.quarantined_frames;
    total.bad_pages += one.bad_pages;
    total.usable_frames += one.usable_frames;
  }
  return total;
}

storage::FaultStats BufferService::AggregateFaultStats() const {
  storage::FaultStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->fault == nullptr) continue;
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    const storage::FaultStats& one = shard->fault->fault_stats();
    total.transient_errors += one.transient_errors;
    total.permanent_errors += one.permanent_errors;
    total.torn_reads += one.torn_reads;
    total.bit_flips += one.bit_flips;
    total.latency_spikes += one.latency_spikes;
  }
  return total;
}

size_t BufferService::shared_candidate() const {
  if (!asb_shared_) return 0;
  return static_cast<size_t>(asb_tuning_.Load());
}

void BufferService::FlushShardLocked(Shard& shard) {
  if constexpr (!obs::kEnabled) return;
  if (shard.collector == nullptr) return;
  shard.buffer->FlushObservability();
  obs::MetricsRegistry& metrics = shard.collector->metrics();
  const uint64_t waits = shard.latch_waits.load(std::memory_order_relaxed);
  const uint64_t acquires =
      shard.latch_acquires.load(std::memory_order_relaxed);
  const uint64_t reads = shard.view.stats().reads;
  metrics.GetCounter("svc.latch_waits")->Add(waits - shard.flushed_latch_waits);
  metrics.GetCounter("svc.latch_acquires")
      ->Add(acquires - shard.flushed_latch_acquires);
  metrics.GetCounter("svc.disk_reads")->Add(reads - shard.flushed_disk_reads);
  shard.flushed_latch_waits = waits;
  shard.flushed_latch_acquires = acquires;
  shard.flushed_disk_reads = reads;
}

obs::MetricsSnapshot BufferService::MetricsSnapshot() {
  if (!collect_metrics_) return {};
  // Merge in shard order: registry merging is commutative, so the combined
  // snapshot is identical for any client-thread count as long as the
  // underlying per-shard counts are.
  obs::MetricsRegistry merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    FlushShardLocked(*shard);
    merged.Merge(shard->collector->metrics().Snapshot());
  }
  return merged.Snapshot();
}

std::vector<obs::MetricsSnapshot> BufferService::ShardMetricsSnapshots() {
  std::vector<obs::MetricsSnapshot> snapshots;
  if (!collect_metrics_) return snapshots;
  snapshots.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    FlushShardLocked(*shard);
    snapshots.push_back(shard->collector->metrics().Snapshot());
  }
  return snapshots;
}

}  // namespace sdb::svc
