#include "svc/buffer_service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "core/policy_asb.h"
#include "core/policy_factory.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "svc/flush_coordinator.h"

namespace sdb::svc {

namespace {

/// splitmix64 finalizer: page ids are sequential on disk, so a plain modulo
/// would put whole subtrees on one shard; the mix spreads them evenly.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixPageId(uint64_t x) { return Mix64(x); }

/// Capacity split: total/count per shard, remainder to the lowest-numbered
/// shards one frame each.
size_t SplitFrames(size_t total, size_t count, size_t shard) {
  return total / count + (shard < total % count ? 1 : 0);
}

}  // namespace

BufferService::BufferService(const storage::DiskManager& disk,
                             const BufferServiceConfig& config) {
  Init(disk, config);
}

BufferService::BufferService(storage::DiskManager* disk,
                             wal::WalManager* wal,
                             const BufferServiceConfig& config) {
  SDB_CHECK(disk != nullptr);
  SDB_CHECK(wal != nullptr);
  writable_disk_ = disk;
  wal_ = wal;
  Init(*disk, config);
}

void BufferService::Init(const storage::DiskManager& disk,
                         const BufferServiceConfig& config) {
  total_frames_ = config.total_frames;
  policy_spec_ = config.policy_spec;
  latch_mode_ = config.latch_mode;
  collect_metrics_ = config.collect_metrics && obs::kEnabled;
  SDB_CHECK_MSG(config.shard_count > 0, "service needs at least one shard");
  SDB_CHECK_MSG(config.total_frames >= config.shard_count,
                "fewer frames than shards: some shard would be empty");
  shards_.reserve(config.shard_count);
  for (size_t s = 0; s < config.shard_count; ++s) {
    auto shard = std::make_unique<Shard>(disk);
    if (collect_metrics_) {
      obs::CollectorOptions options;
      options.event_capacity = 0;  // metrics only; no per-shard event ring
      shard->collector = std::make_unique<obs::Collector>(options);
    }
    auto policy = core::CreatePolicy(config.policy_spec);
    if (config.share_asb_tuning) {
      // Attach before the buffer constructs (construction binds the policy,
      // and Bind is where the shard registers with the global tuning).
      if (auto* asb = dynamic_cast<core::AsbPolicy*>(policy.get())) {
        asb->set_shared_tuning(&asb_tuning_);
        asb_shared_ = true;
      }
    }
    storage::PageDevice* device = &shard->view;
    if (writable_disk_ != nullptr) {
      shard->writable = std::make_unique<storage::WritableDiskView>(
          *writable_disk_, device_mu_);
      device = shard->writable.get();
    }
    if (config.fault_profile.enabled()) {
      // Each shard draws from an independent but seed-derived stream: the
      // whole service replays for a fixed profile seed, yet shards do not
      // mirror each other's fault pattern.
      storage::FaultProfile profile = config.fault_profile;
      profile.seed = Mix64(profile.seed ^ (static_cast<uint64_t>(s) + 1));
      shard->fault = std::make_unique<storage::FaultInjectingDevice>(
          *device, std::move(profile));
      device = shard->fault.get();
    }
    shard->buffer = std::make_unique<core::BufferManager>(
        device, SplitFrames(total_frames_, config.shard_count, s),
        std::move(policy), shard->collector.get(), config.resilience);
    shard->buffer->set_latch(&shard->latch);
    if (latch_mode_ == LatchMode::kOptimistic) {
      core::ConcurrentOptions concurrent;
      concurrent.optimistic = true;
      concurrent.event_ring_capacity = config.event_ring_capacity;
      concurrent.async_reads = config.async_reads;
      concurrent.async.queue_depth = config.async_queue_depth;
      // Deterministic per-shard completion schedule: the whole service
      // replays for a fixed shard layout, but shards do not mirror each
      // other's reordering.
      concurrent.async.completion_seed =
          Mix64(0x5db0a51cull ^ (static_cast<uint64_t>(s) + 1));
      shard->buffer->EnableConcurrency(concurrent);
    }
    if (wal_ != nullptr) shard->buffer->AttachWal(wal_);
    if (writable_disk_ != nullptr && config.flusher_threads > 0) {
      core::WritebackOptions writeback;
      writeback.enabled = true;
      writeback.low_watermark = config.dirty_low_watermark;
      writeback.high_watermark = config.dirty_high_watermark;
      shard->buffer->ConfigureBackgroundWriteback(writeback);
    }
    shards_.push_back(std::move(shard));
  }
  fuzzy_checkpoints_ = config.fuzzy_checkpoints && writable_disk_ != nullptr;
  truncate_wal_ = config.truncate_wal && fuzzy_checkpoints_;
  if (writable_disk_ != nullptr && config.flusher_threads > 0) {
    FlushCoordinatorOptions flusher;
    flusher.threads = std::min(config.flusher_threads, shards_.size());
    flusher.idle_wait_us = config.flusher_idle_us;
    flusher.batch_pages = config.flusher_batch_pages;
    flusher_ = std::make_unique<FlushCoordinator>(this, flusher);
  }
}

BufferService::~BufferService() = default;

size_t BufferService::ShardOf(storage::PageId page) const {
  return static_cast<size_t>(MixPageId(static_cast<uint64_t>(page)) %
                             shards_.size());
}

size_t BufferService::ShardFrames(size_t shard) const {
  return SplitFrames(total_frames_, shards_.size(), shard);
}

std::unique_lock<std::mutex> BufferService::LockShard(Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.latch, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.latch_waits.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  shard.latch_acquires.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

core::StatusOr<core::PageHandle> BufferService::Fetch(
    storage::PageId page, const core::AccessContext& ctx) {
  const size_t s = ShardOf(page);
  Shard& shard = *shards_[s];
  // Span over the whole routed fetch (optimistic probe included); payload =
  // the shard index, flag = served latch-free.
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kShardFetch);
  span.set_page(page);
  span.set_payload(s);
  if (latch_mode_ == LatchMode::kOptimistic) {
    // Latch-free hit path: version-validated pin, bookkeeping deferred.
    if (std::optional<core::PageHandle> hit =
            shard.buffer->TryOptimisticFetch(page, ctx)) {
      span.set_flag(true);
      return std::move(*hit);
    }
  }
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.buffer->Fetch(page, ctx);
}

void BufferService::FetchBatch(
    std::span<const storage::PageId> pages, const core::AccessContext& ctx,
    std::vector<core::StatusOr<core::PageHandle>>* out) {
  // Phase 1 (latch-free): serve what the optimistic path can — but keep
  // each shard's access sequence in input order. Once one page of a shard
  // has to take the latched path, serving a LATER page of that same shard
  // optimistically here would reorder the two accesses as the shard's
  // policy sees them (the optimistic hit lands first, the latched fetch
  // after), diverging from the mutex baseline's per-shard sequence. So the
  // first probe failure blocks the rest of that shard into phase 2, where
  // the batch pipeline replays them in order under one latch hold.
  std::vector<std::optional<core::StatusOr<core::PageHandle>>> slots(
      pages.size());
  if (latch_mode_ == LatchMode::kOptimistic) {
    std::vector<bool> shard_blocked(shards_.size(), false);
    for (size_t i = 0; i < pages.size(); ++i) {
      const size_t s = ShardOf(pages[i]);
      if (shard_blocked[s]) continue;
      if (std::optional<core::PageHandle> hit =
              shards_[s]->buffer->TryOptimisticFetch(pages[i], ctx)) {
        slots[i] = std::move(*hit);
      } else {
        shard_blocked[s] = true;
      }
    }
  }
  // Phase 2: group the remainder by shard (input order preserved within a
  // shard — different shards are independent buffers) and run each group
  // through the shard's batched miss pipeline under one latch hold.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    if (!slots[i].has_value()) by_shard[ShardOf(pages[i])].push_back(i);
  }
  std::vector<storage::PageId> shard_pages;
  std::vector<core::StatusOr<core::PageHandle>> shard_out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    shard_pages.clear();
    shard_out.clear();
    for (const size_t i : by_shard[s]) shard_pages.push_back(pages[i]);
    Shard& shard = *shards_[s];
    // One span per shard group: the latch hold plus the shard's batched
    // miss pipeline (any kAsyncSubmit/kAsyncComplete spans nest inside).
    // payload = the shard index, page = the group's lead page.
    obs::ScopedSpan span(ctx.span, obs::SpanKind::kShardFetch);
    span.set_page(shard_pages.front());
    span.set_payload(s);
    const std::unique_lock<std::mutex> lock = LockShard(shard);
    shard.buffer->FetchBatchLocked(shard_pages, ctx, &shard_out);
    for (size_t k = 0; k < by_shard[s].size(); ++k) {
      slots[by_shard[s][k]] = std::move(shard_out[k]);
    }
  }
  out->reserve(out->size() + pages.size());
  for (auto& slot : slots) out->push_back(std::move(*slot));
}

core::StatusOr<core::PageHandle> BufferService::New(
    const core::AccessContext& ctx) {
  if (writable_disk_ == nullptr) {
    return core::Status::Unimplemented(
        "BufferService is read-only: New() is not served");
  }
  if (degraded()) {
    return core::Status::Unavailable(
        "service degraded: read-only mode, New() refused");
  }
  // Allocate on the shared device first — the page id decides the shard.
  // A failed allocation (disk full) is backpressure, not degradation: the
  // caller may free space or retry later, and commits of existing pages
  // keep working.
  storage::PageId page;
  {
    const std::lock_guard<std::mutex> device_lock(device_mu_);
    const core::StatusOr<storage::PageId> allocated =
        writable_disk_->Allocate();
    if (!allocated.ok()) return allocated.status();
    page = *allocated;
  }
  Shard& shard = *shards_[ShardOf(page)];
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kShardFetch);
  span.set_page(page);
  span.set_payload(ShardOf(page));
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.buffer->NewAt(page, ctx);
}

core::Status BufferService::Commit(const core::AccessContext& ctx) {
  if (wal_ == nullptr) {
    return core::Status::Unimplemented(
        "BufferService is read-only: nothing to commit");
  }
  if (degraded()) {
    return core::Status::Unavailable(
        "service degraded: read-only mode, Commit() refused");
  }
  // All shard latches, in index order (the service-wide lock order), so the
  // gathered images are a consistent cross-shard snapshot and stay frozen
  // until the group is durable.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    locks.push_back(LockShard(*shard));
  }
  std::vector<wal::PageImageRef> images;
  std::vector<std::vector<core::FrameId>> frames(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->buffer->CollectDirtyPages(&images, &frames[s]);
  }
  uint64_t page_count;
  {
    const std::lock_guard<std::mutex> device_lock(device_mu_);
    page_count = writable_disk_->page_count();
  }
  core::StatusOr<wal::Lsn> end = wal_->CommitPages(images, page_count, ctx);
  if (!end.ok()) {
    // A commit can fail transiently (shutdown race); only a sticky WAL
    // error — durability is gone for good — trips degraded mode. All shard
    // latches are held here, satisfying EnterDegraded's contract.
    if (!wal_->sticky_error().ok()) {
      EnterDegraded(DegradedState::kWalError, 0, end.status().code());
    }
    return end.status();
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->buffer->MarkFramesCommitted(frames[s], *end);
  }
  // The commit just turned its dirty pages into flush candidates (logged,
  // so the flusher can write them without a steal): wake the workers now
  // rather than waiting out the idle timer.
  if (flusher_ != nullptr) flusher_->Nudge();
  return core::Status::Ok();
}

core::Status BufferService::Checkpoint(const core::AccessContext& ctx) {
  if (wal_ == nullptr) {
    return core::Status::Unimplemented(
        "BufferService is read-only: nothing to checkpoint");
  }
  if (core::Status committed = Commit(ctx); !committed.ok()) return committed;
  if (fuzzy_checkpoints_) {
    // Fuzzy: no force pass, no whole-service latch hold. The redo horizon
    // is min(floor, min rec_lsn - 1) with the floor sampled BEFORE the
    // shard scan: a frame dirtied after the sample stamps rec_lsn past the
    // floor, so scanning one shard at a time — mutators running on the
    // others — can never push the horizon past a record recovery still
    // needs. Flushed-meanwhile frames only *raise* the min, which is safe:
    // their bytes are already on the device.
    const wal::Lsn floor = wal_->next_lsn();
    wal::Lsn redo = floor;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::unique_lock<std::mutex> lock = LockShard(*shard);
      const uint64_t min_rec = shard->buffer->min_rec_lsn();
      if (min_rec != 0) redo = std::min<wal::Lsn>(redo, min_rec - 1);
    }
    uint64_t page_count;
    {
      const std::lock_guard<std::mutex> device_lock(device_mu_);
      page_count = writable_disk_->page_count();
    }
    core::StatusOr<wal::Lsn> end =
        wal_->AppendCheckpoint(page_count, ctx, redo);
    if (!end.ok()) {
      if (!wal_->sticky_error().ok()) {
        const std::unique_lock<std::mutex> lock = LockShard(*shards_[0]);
        EnterDegraded(DegradedState::kWalError, 0, end.status().code());
      }
      return end.status();
    }
    // The checkpoint record is durable, so every record below its carried
    // horizon is dead — whole segments of it may be reclaimed.
    if (truncate_wal_) {
      core::Status truncated = wal_->TruncateBelow(redo);
      if (!truncated.ok() && !wal_->sticky_error().ok()) {
        const std::unique_lock<std::mutex> lock = LockShard(*shards_[0]);
        EnterDegraded(DegradedState::kWalError, 0, truncated.code());
      }
      return truncated;
    }
    return core::Status::Ok();
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    locks.push_back(LockShard(*shard));
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    // A frame dirtied between the Commit above and this latch hold gets a
    // forced steal commit inside the write-back, so the checkpoint's
    // invariant (device state == some committed state) still holds.
    if (core::Status forced = shard->buffer->ForceDirty(ctx); !forced.ok()) {
      return forced;
    }
  }
  uint64_t page_count;
  {
    const std::lock_guard<std::mutex> device_lock(device_mu_);
    page_count = writable_disk_->page_count();
  }
  core::StatusOr<wal::Lsn> end = wal_->AppendCheckpoint(page_count, ctx);
  if (!end.ok()) {
    // Every shard latch is still held (`locks` above), so EnterDegraded's
    // collector access is covered.
    if (!wal_->sticky_error().ok()) {
      EnterDegraded(DegradedState::kWalError, 0, end.status().code());
    }
    return end.status();
  }
  return core::Status::Ok();
}

core::StatusOr<size_t> BufferService::FlushShardBatch(
    size_t s, size_t max_pages, const core::AccessContext& ctx) {
  Shard& shard = *shards_[s];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  core::BufferManager& buffer = *shard.buffer;
  const core::WritebackOptions& writeback = buffer.writeback_options();
  if (!writeback.enabled) return size_t{0};
  if (wal_ != nullptr && !wal_->sticky_error().ok()) {
    // The write-ahead rule makes every flush of a logged page wait on WAL
    // durability, which a sticky log can never grant: flushing now would
    // just spin each candidate through EnsureDurable failures. Park the
    // dirty set — it is the only current copy of that data.
    EnterDegraded(DegradedState::kWalError, s, wal_->sticky_error().code());
    return size_t{0};
  }
  const size_t usable = buffer.frame_count() - buffer.quarantined_count();
  if (usable == 0) return size_t{0};
  const double ratio =
      static_cast<double>(buffer.dirty_frame_count()) / usable;
  if (ratio <= writeback.low_watermark) return size_t{0};
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kFlush);
  std::vector<core::DirtyCandidate> candidates;
  const size_t harvested =
      buffer.HarvestFlushCandidates(max_pages, &candidates);
  span.set_flag(harvested == max_pages);
  if (harvested == 0) return size_t{0};
  core::StatusOr<size_t> flushed = buffer.FlushFrames(candidates, ctx);
  if (flushed.ok()) span.set_payload(*flushed);
  // FlushFrames may have escalated persistent write failures to frame
  // quarantine; when that exhausts the shard's quarantine budget the write
  // path has lost the race against the device for good.
  if (buffer.quarantine_cap() > 0 &&
      buffer.quarantined_count() >= buffer.quarantine_cap()) {
    EnterDegraded(DegradedState::kQuarantineSaturated, s,
                  core::StatusCode::kPermanentFailure);
  }
  return flushed;
}

std::span<const std::byte> BufferService::Peek(storage::PageId page) const {
  return shards_[ShardOf(page)]->buffer->Peek(page);
}

bool BufferService::Contains(storage::PageId page) const {
  Shard& shard = *shards_[ShardOf(page)];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  return shard.buffer->Contains(page);
}

ShardStats BufferService::StatsOfShard(size_t s) const {
  Shard& shard = *shards_[s];
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  // Deferred optimistic events must reach the buffer's stats before they
  // are sampled (no-op in mutex mode).
  shard.buffer->DrainDeferred();
  ShardStats stats;
  stats.buffer = shard.buffer->stats();
  stats.io = ShardIoStats(shard);
  stats.latch_waits = shard.latch_waits.load(std::memory_order_relaxed);
  stats.latch_acquires = shard.latch_acquires.load(std::memory_order_relaxed);
  stats.quarantined_frames = shard.buffer->quarantined_count();
  stats.bad_pages = shard.buffer->bad_page_count();
  stats.usable_frames = shard.buffer->frame_count() - stats.quarantined_frames;
  stats.optimistic_hits = shard.buffer->optimistic_hits();
  stats.optimistic_retries = shard.buffer->optimistic_retries();
  stats.version_conflicts = shard.buffer->version_conflicts();
  if (const storage::AsyncPageDevice* async = shard.buffer->async_device()) {
    stats.batch_submits = async->stats().batch_submits;
    stats.async_reads = async->stats().completed;
  }
  stats.degraded = static_cast<uint64_t>(degraded_state());
  stats.degraded_entries = degraded_entries();
  return stats;
}

ShardStats BufferService::AggregateStats() const {
  ShardStats total;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats one = StatsOfShard(s);
    total.buffer.requests += one.buffer.requests;
    total.buffer.hits += one.buffer.hits;
    total.buffer.misses += one.buffer.misses;
    total.buffer.evictions += one.buffer.evictions;
    total.buffer.dirty_writebacks += one.buffer.dirty_writebacks;
    total.buffer.sync_writeback_fallbacks +=
        one.buffer.sync_writeback_fallbacks;
    total.buffer.io_read_retries += one.buffer.io_read_retries;
    total.buffer.io_checksum_mismatches += one.buffer.io_checksum_mismatches;
    total.buffer.io_recovered_reads += one.buffer.io_recovered_reads;
    total.buffer.io_permanent_failures += one.buffer.io_permanent_failures;
    total.buffer.io_quarantined_frames += one.buffer.io_quarantined_frames;
    total.buffer.io_write_retries += one.buffer.io_write_retries;
    total.buffer.io_write_quarantined += one.buffer.io_write_quarantined;
    total.io.reads += one.io.reads;
    total.io.writes += one.io.writes;
    total.io.sequential_reads += one.io.sequential_reads;
    total.io.sequential_writes += one.io.sequential_writes;
    total.latch_waits += one.latch_waits;
    total.latch_acquires += one.latch_acquires;
    total.quarantined_frames += one.quarantined_frames;
    total.bad_pages += one.bad_pages;
    total.usable_frames += one.usable_frames;
    total.optimistic_hits += one.optimistic_hits;
    total.optimistic_retries += one.optimistic_retries;
    total.version_conflicts += one.version_conflicts;
    total.batch_submits += one.batch_submits;
    total.async_reads += one.async_reads;
  }
  // Service-level, not per-shard: copied rather than summed.
  total.degraded = static_cast<uint64_t>(degraded_state());
  total.degraded_entries = degraded_entries();
  return total;
}

storage::FaultStats BufferService::AggregateFaultStats() const {
  storage::FaultStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->fault == nullptr) continue;
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    const storage::FaultStats& one = shard->fault->fault_stats();
    total.transient_errors += one.transient_errors;
    total.permanent_errors += one.permanent_errors;
    total.torn_reads += one.torn_reads;
    total.torn_writes += one.torn_writes;
    total.bit_flips += one.bit_flips;
    total.latency_spikes += one.latency_spikes;
    total.write_transient_errors += one.write_transient_errors;
    total.write_permanent_errors += one.write_permanent_errors;
    total.sync_failures += one.sync_failures;
    total.disk_full_errors += one.disk_full_errors;
  }
  return total;
}

void BufferService::EnterDegraded(DegradedState why, size_t s,
                                  core::StatusCode code) {
  uint8_t expected = static_cast<uint8_t>(DegradedState::kHealthy);
  if (!degraded_.compare_exchange_strong(expected, static_cast<uint8_t>(why),
                                         std::memory_order_acq_rel)) {
    return;  // already degraded; the first trigger named the cause
  }
  degraded_entries_.fetch_add(1, std::memory_order_relaxed);
  obs::Collector* collector = shards_[s]->collector.get();
  if (!collect_metrics_ || collector == nullptr) return;
  // Registered here, not up front: a healthy run's exported metric set
  // must not change just because degraded mode exists.
  collector->metrics().GetCounter("wal.degraded_entries")->Add();
  obs::Event event;
  event.kind = obs::EventKind::kDegraded;
  event.frame = static_cast<uint32_t>(s);
  event.a = static_cast<uint64_t>(why);
  event.b = static_cast<uint64_t>(code);
  collector->events().Push(event);
}

void BufferService::NoteFlushBackoff(size_t shard, uint64_t consecutive_errors,
                                     uint64_t skip_rounds) {
  if (!collect_metrics_) return;
  Shard& s = *shards_[shard];
  if (s.collector == nullptr) return;
  const std::unique_lock<std::mutex> lock = LockShard(s);
  obs::Event event;
  event.kind = obs::EventKind::kFlushBackoff;
  event.frame = static_cast<uint32_t>(shard);
  event.a = consecutive_errors;
  event.b = skip_rounds;
  s.collector->events().Push(event);
}

size_t BufferService::shared_candidate() const {
  if (!asb_shared_) return 0;
  return static_cast<size_t>(asb_tuning_.Load());
}

void BufferService::FlushShardLocked(Shard& shard) {
  if constexpr (!obs::kEnabled) return;
  if (shard.collector == nullptr) return;
  // Ordering contract of the idempotent flush: (1) replay the deferred
  // optimistic events so every total they feed is final for this sample,
  // (2) flush the buffer's own deltas, (3) sample each service-level source
  // exactly once and advance its base saturatingly. The saturation is what
  // makes the flush immune to a source moving backwards mid-run — a shard
  // quarantined and its buffer stats reset between two flushes used to
  // wrap the delta and silently corrupt (under-report, then overflow)
  // svc.latch_waits and friends.
  shard.buffer->DrainDeferred();
  shard.buffer->FlushObservability();
  obs::MetricsRegistry& metrics = shard.collector->metrics();
  const auto delta = [](uint64_t now, uint64_t* base) {
    const uint64_t d = now >= *base ? now - *base : 0;
    *base = now;
    return d;
  };
  metrics.GetCounter("svc.latch_waits")
      ->Add(delta(shard.latch_waits.load(std::memory_order_relaxed),
                  &shard.flushed_latch_waits));
  metrics.GetCounter("svc.latch_acquires")
      ->Add(delta(shard.latch_acquires.load(std::memory_order_relaxed),
                  &shard.flushed_latch_acquires));
  metrics.GetCounter("svc.disk_reads")
      ->Add(delta(ShardIoStats(shard).reads, &shard.flushed_disk_reads));
  if (latch_mode_ == LatchMode::kOptimistic) {
    metrics.GetCounter("svc.optimistic_hits")
        ->Add(delta(shard.buffer->optimistic_hits(),
                    &shard.flushed_optimistic_hits));
    metrics.GetCounter("svc.optimistic_retries")
        ->Add(delta(shard.buffer->optimistic_retries(),
                    &shard.flushed_optimistic_retries));
    metrics.GetCounter("svc.version_conflicts")
        ->Add(delta(shard.buffer->version_conflicts(),
                    &shard.flushed_version_conflicts));
  }
  if (const storage::AsyncPageDevice* async = shard.buffer->async_device()) {
    const storage::AsyncDeviceStats& astats = async->stats();
    metrics.GetCounter("io.batch_submits")
        ->Add(delta(astats.batch_submits, &shard.flushed_batch_submits));
    uint64_t bucket_deltas[storage::AsyncDeviceStats::kDepthBuckets];
    for (size_t b = 0; b < storage::AsyncDeviceStats::kDepthBuckets; ++b) {
      bucket_deltas[b] =
          delta(astats.depth_buckets[b], &shard.flushed_depth_buckets[b]);
    }
    metrics
        .GetHistogram("io.queue_depth",
                      std::span<const double>(storage::kAsyncQueueDepthBounds))
        ->MergeFrom(bucket_deltas,
                    static_cast<double>(delta(astats.depth_sum,
                                              &shard.flushed_depth_sum)),
                    delta(astats.submitted, &shard.flushed_async_submitted));
  }
}

obs::MetricsSnapshot BufferService::MetricsSnapshot() {
  if (!collect_metrics_) return {};
  // Merge in shard order: registry merging is commutative, so the combined
  // snapshot is identical for any client-thread count as long as the
  // underlying per-shard counts are.
  obs::MetricsRegistry merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    FlushShardLocked(*shard);
    merged.Merge(shard->collector->metrics().Snapshot());
  }
  return merged.Snapshot();
}

std::string BufferService::StatsText() {
  obs::MetricsRegistry registry;
  if (collect_metrics_) {
    registry.Merge(MetricsSnapshot());
  } else {
    // No collectors attached: synthesize the core series from the shard
    // aggregate so the dump works on any service configuration.
    const ShardStats stats = AggregateStats();
    registry.GetCounter("buffer.requests")->Add(stats.buffer.requests);
    registry.GetCounter("buffer.hits")->Add(stats.buffer.hits);
    registry.GetCounter("buffer.misses")->Add(stats.buffer.misses);
    registry.GetCounter("buffer.evictions")->Add(stats.buffer.evictions);
    if (flusher_ != nullptr) {
      registry.GetCounter("wal.sync_writeback_fallbacks")
          ->Add(stats.buffer.sync_writeback_fallbacks);
      registry.GetCounter("wal.flusher_pages")
          ->Add(flusher_->stats().pages_flushed);
    }
    registry.GetCounter("svc.latch_waits")->Add(stats.latch_waits);
    registry.GetCounter("svc.latch_acquires")->Add(stats.latch_acquires);
    registry.GetCounter("svc.disk_reads")->Add(stats.io.reads);
    registry.GetCounter("io.quarantined_frames")
        ->Add(stats.quarantined_frames);
    // Write-path series, synthesized only once they have something to say
    // (healthy read-only runs keep their exact exposition).
    if (stats.buffer.io_write_retries > 0) {
      registry.GetCounter("io.write_retries")
          ->Add(stats.buffer.io_write_retries);
    }
    if (stats.buffer.io_write_quarantined > 0) {
      registry.GetCounter("io.write_quarantined")
          ->Add(stats.buffer.io_write_quarantined);
    }
    if (wal_ != nullptr && wal_->stats().write_retries > 0) {
      registry.GetCounter("wal.write_retries")
          ->Add(wal_->stats().write_retries);
    }
    if (stats.degraded_entries > 0) {
      registry.GetCounter("wal.degraded_entries")
          ->Add(stats.degraded_entries);
    }
  }
  registry.GetGauge("svc.shards")
      ->Set(static_cast<double>(shards_.size()));
  registry.GetGauge("svc.total_frames")
      ->Set(static_cast<double>(total_frames_));
  if (asb_shared_) {
    registry.GetGauge("svc.shared_candidate")
        ->Set(static_cast<double>(shared_candidate()));
  }
  // The degraded gauge appears only once the service has degraded: a
  // healthy run's exposition stays byte-identical to the pre-fault builds.
  if (degraded()) {
    registry.GetGauge("svc.degraded")
        ->Set(static_cast<double>(degraded_state()));
  }
  return obs::PrometheusText(registry.Snapshot());
}

std::vector<obs::MetricsSnapshot> BufferService::ShardMetricsSnapshots() {
  std::vector<obs::MetricsSnapshot> snapshots;
  if (!collect_metrics_) return snapshots;
  snapshots.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::unique_lock<std::mutex> lock = LockShard(*shard);
    FlushShardLocked(*shard);
    snapshots.push_back(shard->collector->metrics().Snapshot());
  }
  return snapshots;
}

}  // namespace sdb::svc
