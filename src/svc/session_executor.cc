#include "svc/session_executor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "core/access_context.h"
#include "rtree/rtree.h"

namespace sdb::svc {

void PinLatencyHistogram::Record(double ns, uint64_t weight) {
  size_t b = 0;
  while (b < std::size(kPinLatencyBoundsNs) && ns > kPinLatencyBoundsNs[b]) {
    ++b;
  }
  counts[b] += weight;
  sum_ns += ns * static_cast<double>(weight);
  observations += weight;
}

void PinLatencyHistogram::MergeFrom(const PinLatencyHistogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) counts[b] += other.counts[b];
  sum_ns += other.sum_ns;
  observations += other.observations;
}

void CountingSource::RecordElapsed(std::chrono::steady_clock::time_point start,
                                   uint64_t pages) {
  const double elapsed_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // A batch's pages share one wall interval; record each at the mean so
  // observation count stays equal to page-access count.
  pin_latency_.Record(elapsed_ns / static_cast<double>(pages), pages);
}

SessionExecutor::SessionExecutor(const storage::DiskManager* disk,
                                 core::PageSource* source,
                                 storage::PageId tree_meta,
                                 const SessionExecutorConfig& config)
    : disk_(disk), source_(source), tree_meta_(tree_meta), config_(config) {
  SDB_CHECK(config_.workers > 0);
  SDB_CHECK(config_.queue_capacity > 0);
  workers_.reserve(config_.workers);
  for (size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionExecutor::~SessionExecutor() { Finish(); }

void SessionExecutor::Submit(const workload::QuerySet& session) {
  SDB_CHECK_MSG(session.queries.size() < config_.query_id_stride,
                "session longer than the query-id stride");
  std::unique_lock<std::mutex> lock(mu_);
  SDB_CHECK_MSG(!closed_, "Submit after Finish");
  if (queue_.size() >= config_.queue_capacity) {
    ++backpressure_waits_;
    not_full_.wait(lock, [this] {
      return queue_.size() < config_.queue_capacity;
    });
  }
  const size_t index = submitted_++;
  results_.emplace_back();
  queue_.push_back(Pending{index, session});
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
}

std::vector<SessionResult> SessionExecutor::Finish() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  if (!finished_) {
    for (std::thread& worker : workers_) worker.join();
    finished_ = true;
  }
  std::vector<SessionResult> results(results_.begin(), results_.end());
  return results;
}

SessionExecutorStats SessionExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionExecutorStats stats;
  stats.sessions = submitted_;
  stats.backpressure_waits = backpressure_waits_;
  stats.max_queue_depth = max_queue_depth_;
  return stats;
}

PinLatencyHistogram SessionExecutor::pin_latency() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pin_latency_;
}

void SessionExecutor::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    SessionResult result = RunSession(pending.index, pending.session);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      results_[pending.index] = std::move(result);
    }
  }
}

SessionResult SessionExecutor::RunSession(size_t index,
                                          const workload::QuerySet& session) {
  SessionResult result;
  result.index = index;
  result.name = session.name;
  result.queries = session.queries.size();

  // Per-session access counter over the shared source; the tree itself is
  // opened per session (traversal holds no shared state).
  CountingSource counting(source_, config_.record_pin_latency);
  const rtree::RTree tree = rtree::RTree::Open(disk_, &counting, tree_meta_);

  const uint64_t logical =
      static_cast<uint64_t>(index) + config_.session_index_offset;
  uint64_t query_id = logical * config_.query_id_stride;
  // The session span is its own trace (trace id = the query-id base, which
  // no query uses — ids start at base + 1) on the session's track; sampled
  // queries land on the same track, so the viewer nests them by time.
  obs::SpanContext session_span;
  if (config_.tracer != nullptr) {
    session_span.tracer = config_.tracer;
    session_span.trace_id = query_id;
    session_span.track = static_cast<uint32_t>(logical);
  }
  obs::ScopedSpan session_scope(
      config_.tracer != nullptr ? &session_span : nullptr,
      obs::SpanKind::kSession);
  session_scope.set_payload(session.queries.size());
  for (const geom::Rect& window : session.queries) {
    core::AccessContext ctx{++query_id};
    // Deterministic sampling decision (pure function of the query id), one
    // fresh per-query context so span ids restart at 1 in every trace.
    obs::SpanContext query_span;
    if (config_.tracer != nullptr && config_.tracer->ShouldSample(query_id)) {
      query_span.tracer = config_.tracer;
      query_span.trace_id = query_id;
      query_span.track = static_cast<uint32_t>(logical);
      ctx.span = &query_span;
    }
    obs::ScopedSpan query_scope(ctx.span, obs::SpanKind::kQuery);
    tree.WindowQueryVisit(window, ctx, [&result](const rtree::Entry&) {
      ++result.result_objects;
    });
  }
  result.page_accesses = counting.fetches();
  result.io_errors = counting.io_errors();
  if (config_.record_pin_latency) {
    const std::lock_guard<std::mutex> lock(mu_);
    pin_latency_.MergeFrom(counting.pin_latency());
  }
  return result;
}

}  // namespace sdb::svc
