#ifndef SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_
#define SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer_manager.h"
#include "obs/trace.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace sdb::svc {

/// Inclusive upper bounds, in nanoseconds, of the per-pin latency histogram
/// (the last bucket is overflow). Log-spaced from sub-microsecond cache
/// hits out to multi-millisecond injected latency spikes, and shared with
/// the obs export so quantiles come from the same buckets everywhere.
inline constexpr double kPinLatencyBoundsNs[] = {
    250,       500,        1'000,      2'000,      4'000,     8'000,
    16'000,    32'000,     64'000,     128'000,    256'000,   512'000,
    1'000'000, 2'000'000,  4'000'000,  8'000'000};

/// Fixed-bucket per-pin latency histogram (bounds kPinLatencyBoundsNs).
/// Plain counters so sessions can fill one privately and the executor can
/// merge under its own lock — obs::HistogramQuantile reads it directly.
struct PinLatencyHistogram {
  static constexpr size_t kBuckets = std::size(kPinLatencyBoundsNs) + 1;

  uint64_t counts[kBuckets] = {};
  double sum_ns = 0.0;
  uint64_t observations = 0;

  void Record(double ns, uint64_t weight = 1);
  void MergeFrom(const PinLatencyHistogram& other);
};

/// PageSource decorator counting the fetches routed through it (and,
/// separately, the fetches that came back as errors). The executor gives
/// every session its own counter, so per-session access totals are exact
/// regardless of how sessions interleave on the shared service underneath.
/// With `time_pins`, every fetch's wall latency also lands in a per-session
/// histogram (a batch records one observation per page at the batch's mean,
/// keeping observation count == page-access count).
class CountingSource final : public core::PageSource {
 public:
  explicit CountingSource(core::PageSource* inner, bool time_pins = false)
      : inner_(inner), time_pins_(time_pins) {}

  core::StatusOr<core::PageHandle> Fetch(storage::PageId page,
                                         const core::AccessContext& ctx)
      override {
    ++fetches_;
    const auto start = time_pins_ ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    core::StatusOr<core::PageHandle> fetched = inner_->Fetch(page, ctx);
    if (time_pins_) RecordElapsed(start, 1);
    if (!fetched.ok()) ++io_errors_;
    return fetched;
  }
  // Forwarding override: without it the decorator would degrade every batch
  // to the base class's sequential-Fetch fallback and quietly disable the
  // service's batched miss pipeline.
  void FetchBatch(std::span<const storage::PageId> pages,
                  const core::AccessContext& ctx,
                  std::vector<core::StatusOr<core::PageHandle>>* out)
      override {
    fetches_ += pages.size();
    const auto start = time_pins_ ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    const size_t first = out->size();
    inner_->FetchBatch(pages, ctx, out);
    if (time_pins_ && !pages.empty()) RecordElapsed(start, pages.size());
    for (size_t i = first; i < out->size(); ++i) {
      if (!(*out)[i].ok()) ++io_errors_;
    }
  }
  core::StatusOr<core::PageHandle> New(const core::AccessContext& ctx)
      override {
    return inner_->New(ctx);
  }
  std::span<const std::byte> Peek(storage::PageId page) const override {
    return inner_->Peek(page);
  }
  bool PrefersBatchedReads() const override {
    return inner_->PrefersBatchedReads();
  }
  // Same reasoning: swallowing the budget would let batch callers pin a
  // shard of the decorated service wall-to-wall.
  size_t BatchPinBudget() const override { return inner_->BatchPinBudget(); }

  uint64_t fetches() const { return fetches_; }
  uint64_t io_errors() const { return io_errors_; }
  const PinLatencyHistogram& pin_latency() const { return pin_latency_; }

 private:
  void RecordElapsed(std::chrono::steady_clock::time_point start,
                     uint64_t pages);

  core::PageSource* inner_;
  bool time_pins_ = false;
  uint64_t fetches_ = 0;
  uint64_t io_errors_ = 0;
  PinLatencyHistogram pin_latency_;
};

/// Construction knobs of a SessionExecutor.
struct SessionExecutorConfig {
  size_t workers = 4;
  /// Submitted-but-unclaimed session limit; Submit blocks (backpressure)
  /// when the queue is full.
  size_t queue_capacity = 8;
  /// Session i draws its query ids from [i*stride, (i+1)*stride): disjoint
  /// per session, and each id names the same query in every run regardless
  /// of which worker executes it. Must exceed every session's query count.
  uint64_t query_id_stride = uint64_t{1} << 20;
  /// Time every pin (Fetch/FetchBatch wall latency) into the executor-wide
  /// histogram returned by pin_latency(). Off by default: the two clock
  /// reads per fetch are measurable on the latch-free hit path.
  bool record_pin_latency = false;
  /// Span-trace sink. Null (the default) leaves every access detached —
  /// no ids minted, no clock reads, one pointer compare per site. With a
  /// tracer, each session emits one kSession span, and every query whose
  /// id the tracer samples runs under a kQuery span whose context rides
  /// core::AccessContext::span into the service and device layers.
  obs::Tracer* tracer = nullptr;
  /// Added to the submission index when deriving the session's logical
  /// index (query-id base = logical * query_id_stride, trace track =
  /// logical). Lets a bench run two executor phases over one service
  /// without colliding query ids or trace tracks.
  size_t session_index_offset = 0;
};

/// Outcome of one executed session. `index`, `queries`, `result_objects`
/// and `page_accesses` depend only on the session and the tree — not on
/// worker count, scheduling, or the shared buffer's state — so results are
/// bitwise identical for any degree of concurrency.
struct SessionResult {
  size_t index = 0;    ///< submission order
  std::string name;    ///< query-set name
  uint64_t queries = 0;
  uint64_t result_objects = 0;
  uint64_t page_accesses = 0;
  /// Fetches the session's query traversals absorbed as errors (failed
  /// after the service's bounded retries). Nonzero means result_objects is
  /// a lower bound — the session degraded instead of aborting.
  uint64_t io_errors = 0;
};

/// Executor-level counters.
struct SessionExecutorStats {
  uint64_t sessions = 0;
  /// Submit calls that blocked on a full queue.
  uint64_t backpressure_waits = 0;
  /// High-water mark of queued (unclaimed) sessions.
  size_t max_queue_depth = 0;
};

/// Multi-client session executor: a fixed worker pool draining a bounded
/// queue of browsing sessions (workload query sets), every worker replaying
/// its session's window queries against one shared tree through one shared
/// PageSource — the concurrent-service harness of the paper's workloads.
///
/// Each worker opens its own RTree view of the persisted tree (tree
/// traversal state is per-session; only the page source is shared) and
/// wraps the source in a per-session CountingSource. Results are returned
/// in submission order with deterministic per-session accounting.
class SessionExecutor {
 public:
  /// `source` is the shared page source (typically a BufferService) and
  /// must stay alive until Finish() returns. `tree_meta` is the persisted
  /// tree's meta page on `disk`.
  SessionExecutor(const storage::DiskManager* disk, core::PageSource* source,
                  storage::PageId tree_meta,
                  const SessionExecutorConfig& config = {});
  ~SessionExecutor();

  SessionExecutor(const SessionExecutor&) = delete;
  SessionExecutor& operator=(const SessionExecutor&) = delete;

  /// Enqueues one session; blocks while the queue is full. The set is
  /// copied, so the caller may reuse or drop it. Must not be called after
  /// Finish().
  void Submit(const workload::QuerySet& session);

  /// Closes the queue, waits for every submitted session to finish, joins
  /// the workers, and returns the results in submission order. Idempotent;
  /// the destructor calls it if the caller did not.
  std::vector<SessionResult> Finish();

  SessionExecutorStats stats() const;
  const SessionExecutorConfig& config() const { return config_; }

  /// Merged per-pin latency histogram over every finished session (all
  /// zero unless config().record_pin_latency). Quantiles via
  /// obs::HistogramQuantile over kPinLatencyBoundsNs.
  PinLatencyHistogram pin_latency() const;

 private:
  struct Pending {
    size_t index = 0;
    workload::QuerySet session;
  };

  void WorkerLoop();
  SessionResult RunSession(size_t index, const workload::QuerySet& session);

  const storage::DiskManager* disk_;
  core::PageSource* source_;
  storage::PageId tree_meta_;
  SessionExecutorConfig config_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  size_t submitted_ = 0;
  uint64_t backpressure_waits_ = 0;
  size_t max_queue_depth_ = 0;
  // One slot per submitted session, filled by whichever worker ran it;
  // deque so slot references stay stable while Submit grows the container.
  std::deque<SessionResult> results_;
  PinLatencyHistogram pin_latency_;
  std::vector<std::thread> workers_;
  bool finished_ = false;
};

}  // namespace sdb::svc

#endif  // SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_
