#ifndef SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_
#define SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer_manager.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace sdb::svc {

/// PageSource decorator counting the fetches routed through it (and,
/// separately, the fetches that came back as errors). The executor gives
/// every session its own counter, so per-session access totals are exact
/// regardless of how sessions interleave on the shared service underneath.
class CountingSource final : public core::PageSource {
 public:
  explicit CountingSource(core::PageSource* inner) : inner_(inner) {}

  core::StatusOr<core::PageHandle> Fetch(storage::PageId page,
                                         const core::AccessContext& ctx)
      override {
    ++fetches_;
    core::StatusOr<core::PageHandle> fetched = inner_->Fetch(page, ctx);
    if (!fetched.ok()) ++io_errors_;
    return fetched;
  }
  core::StatusOr<core::PageHandle> New(const core::AccessContext& ctx)
      override {
    return inner_->New(ctx);
  }
  std::span<const std::byte> Peek(storage::PageId page) const override {
    return inner_->Peek(page);
  }

  uint64_t fetches() const { return fetches_; }
  uint64_t io_errors() const { return io_errors_; }

 private:
  core::PageSource* inner_;
  uint64_t fetches_ = 0;
  uint64_t io_errors_ = 0;
};

/// Construction knobs of a SessionExecutor.
struct SessionExecutorConfig {
  size_t workers = 4;
  /// Submitted-but-unclaimed session limit; Submit blocks (backpressure)
  /// when the queue is full.
  size_t queue_capacity = 8;
  /// Session i draws its query ids from [i*stride, (i+1)*stride): disjoint
  /// per session, and each id names the same query in every run regardless
  /// of which worker executes it. Must exceed every session's query count.
  uint64_t query_id_stride = uint64_t{1} << 20;
};

/// Outcome of one executed session. `index`, `queries`, `result_objects`
/// and `page_accesses` depend only on the session and the tree — not on
/// worker count, scheduling, or the shared buffer's state — so results are
/// bitwise identical for any degree of concurrency.
struct SessionResult {
  size_t index = 0;    ///< submission order
  std::string name;    ///< query-set name
  uint64_t queries = 0;
  uint64_t result_objects = 0;
  uint64_t page_accesses = 0;
  /// Fetches the session's query traversals absorbed as errors (failed
  /// after the service's bounded retries). Nonzero means result_objects is
  /// a lower bound — the session degraded instead of aborting.
  uint64_t io_errors = 0;
};

/// Executor-level counters.
struct SessionExecutorStats {
  uint64_t sessions = 0;
  /// Submit calls that blocked on a full queue.
  uint64_t backpressure_waits = 0;
  /// High-water mark of queued (unclaimed) sessions.
  size_t max_queue_depth = 0;
};

/// Multi-client session executor: a fixed worker pool draining a bounded
/// queue of browsing sessions (workload query sets), every worker replaying
/// its session's window queries against one shared tree through one shared
/// PageSource — the concurrent-service harness of the paper's workloads.
///
/// Each worker opens its own RTree view of the persisted tree (tree
/// traversal state is per-session; only the page source is shared) and
/// wraps the source in a per-session CountingSource. Results are returned
/// in submission order with deterministic per-session accounting.
class SessionExecutor {
 public:
  /// `source` is the shared page source (typically a BufferService) and
  /// must stay alive until Finish() returns. `tree_meta` is the persisted
  /// tree's meta page on `disk`.
  SessionExecutor(const storage::DiskManager* disk, core::PageSource* source,
                  storage::PageId tree_meta,
                  const SessionExecutorConfig& config = {});
  ~SessionExecutor();

  SessionExecutor(const SessionExecutor&) = delete;
  SessionExecutor& operator=(const SessionExecutor&) = delete;

  /// Enqueues one session; blocks while the queue is full. The set is
  /// copied, so the caller may reuse or drop it. Must not be called after
  /// Finish().
  void Submit(const workload::QuerySet& session);

  /// Closes the queue, waits for every submitted session to finish, joins
  /// the workers, and returns the results in submission order. Idempotent;
  /// the destructor calls it if the caller did not.
  std::vector<SessionResult> Finish();

  SessionExecutorStats stats() const;
  const SessionExecutorConfig& config() const { return config_; }

 private:
  struct Pending {
    size_t index = 0;
    workload::QuerySet session;
  };

  void WorkerLoop();
  SessionResult RunSession(size_t index, const workload::QuerySet& session);

  const storage::DiskManager* disk_;
  core::PageSource* source_;
  storage::PageId tree_meta_;
  SessionExecutorConfig config_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  size_t submitted_ = 0;
  uint64_t backpressure_waits_ = 0;
  size_t max_queue_depth_ = 0;
  // One slot per submitted session, filled by whichever worker ran it;
  // deque so slot references stay stable while Submit grows the container.
  std::deque<SessionResult> results_;
  std::vector<std::thread> workers_;
  bool finished_ = false;
};

}  // namespace sdb::svc

#endif  // SPATIALBUFFER_SVC_SESSION_EXECUTOR_H_
