#ifndef SPATIALBUFFER_SVC_BUFFER_SERVICE_H_
#define SPATIALBUFFER_SVC_BUFFER_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/asb_shared.h"
#include "core/buffer_manager.h"
#include "storage/async_device.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "wal/wal.h"

namespace sdb::svc {

class FlushCoordinator;

/// How the service guards each shard's buffer on the pin/unpin hot path.
enum class LatchMode : uint8_t {
  /// Every fetch takes the shard's std::mutex (the pre-optimistic
  /// behaviour, kept as the A/B baseline).
  kMutex,
  /// Hits pin latch-free through per-frame version stamps; the mutex
  /// becomes a writer-side lock (misses, eviction, quarantine, stats).
  kOptimistic,
};

/// Health of the whole service's write path. The service degrades instead
/// of dying: once a write-side failure survives every retry budget below it
/// (WAL sticky error) or quarantine eats the last spare frame of a shard,
/// New/Commit/Checkpoint return kUnavailable while the read path keeps
/// serving every page it can. Degradation is one-way for the life of the
/// process — the data needed to leave it safely (the unflushed WAL tail,
/// the quarantined frames' images) is exactly what the trigger proved the
/// device cannot persist.
enum class DegradedState : uint8_t {
  kHealthy = 0,
  /// The WAL hit a terminal device failure: nothing can be made durable,
  /// so nothing new may be acknowledged.
  kWalError,
  /// A shard's write-quarantine hit its cap: frames are leaving service
  /// faster than the device accepts pages back.
  kQuarantineSaturated,
};

/// Construction knobs of a BufferService.
struct BufferServiceConfig {
  /// Logical buffer capacity in frames, split over the shards (every shard
  /// gets total/shards frames; the remainder is distributed one frame each
  /// to the lowest-numbered shards). Must be >= shard_count — and since a
  /// fetch whose shard has every frame pinned aborts (inherited from
  /// BufferManager: an unevictable buffer is a caller bug), clients holding
  /// pins concurrently need every shard to have at least
  /// (max concurrent pins + 1) frames. Query traversal pins one page at a
  /// time, so shard_count * (clients + 1) total frames is always safe.
  size_t total_frames = 256;
  size_t shard_count = 4;
  /// Replacement policy of every shard (core::CreatePolicy spec).
  std::string policy_spec = "ASB";
  /// Attach one obs::Collector per shard (mutated only under the shard
  /// latch), feeding per-shard hit/miss/eviction metrics and events.
  bool collect_metrics = false;
  /// With an ASB policy: publish one global candidate-set size that every
  /// shard adapts (clamped CAS) and re-reads before its next demotion scan,
  /// so the self-tuning sees the full overflow-hit evidence instead of a
  /// 1/N slice per shard. OFF = each shard tunes privately.
  bool share_asb_tuning = true;
  /// Per-shard fault handling (retry budget, checksum verification,
  /// quarantine cap), forwarded to every shard's BufferManager.
  core::ResilienceOptions resilience;
  /// Hot-path latching protocol (see LatchMode). Optimistic is the
  /// default; kMutex preserves the previous blocking behaviour for A/B
  /// comparison and as a fallback.
  LatchMode latch_mode = LatchMode::kOptimistic;
  /// Per-shard deferred-event ring capacity in optimistic mode (rounded up
  /// to a power of two). Small rings just fall back to the latched path
  /// more often.
  size_t event_ring_capacity = 1024;
  /// Route FetchBatch misses through a per-shard AsyncPageDevice (batched
  /// submit, out-of-order completion). Only effective in optimistic mode.
  bool async_reads = true;
  /// Submission-queue depth of each shard's async device.
  size_t async_queue_depth = 8;
  /// When enabled, every shard reads through its own FaultInjectingDevice
  /// wrapping the shard view; the profile seed is mixed with the shard
  /// index so shards draw independent fault sequences but the whole service
  /// remains replayable for a fixed seed.
  storage::FaultProfile fault_profile;
  /// Background write-back (writable service only): flusher threads that
  /// harvest each shard's dirty frames off the pin path, so eviction finds
  /// clean victims instead of stalling on device writes. 0 (the default)
  /// keeps the synchronous-eviction behaviour, bit-for-bit.
  size_t flusher_threads = 0;
  /// Watermarks on the per-shard dirty ratio (dirty / usable frames): the
  /// flusher idles at or below the low mark; between the marks it drains
  /// while eviction skips dirty victims; above the high mark eviction stops
  /// waiting and writes back synchronously (counted as
  /// sync_writeback_fallbacks — the bench gate expects zero in steady
  /// state under the defaults).
  double dirty_low_watermark = 0.10;
  double dirty_high_watermark = 0.50;
  /// Pages one flusher round harvests from one shard (bounds the latch
  /// hold; a capped round re-runs immediately).
  size_t flusher_batch_pages = 16;
  /// Idle poll cadence of the flusher between commit nudges.
  uint32_t flusher_idle_us = 200;
  /// Fuzzy checkpoints: Checkpoint() appends a record carrying the redo
  /// low-water mark (min rec_lsn over all shards) instead of forcing every
  /// dirty page to the device first — so it runs concurrently with
  /// mutators. OFF preserves the strict force-checkpoint behaviour (and
  /// its "recovery after checkpoint replays nothing" guarantee).
  bool fuzzy_checkpoints = false;
  /// After each durable fuzzy checkpoint, zero whole WAL segments below
  /// the redo horizon (wal::WalManager::TruncateBelow), bounding log
  /// growth. Requires fuzzy_checkpoints.
  bool truncate_wal = false;
};

/// Counters of one shard (or the shard-summed aggregate).
struct ShardStats {
  core::BufferStats buffer;
  storage::IoStats io;
  /// Fetch arrivals that found the shard latch held by another thread.
  uint64_t latch_waits = 0;
  /// Total latch acquisitions — fetches plus stats/metrics reads (the
  /// contention denominator).
  uint64_t latch_acquires = 0;
  /// Health accounting: frames this shard took out of service and pages it
  /// recorded as permanently unreadable. A shard keeps serving while
  /// degraded; a fetch only fails once nothing evictable remains.
  uint64_t quarantined_frames = 0;
  uint64_t bad_pages = 0;
  /// Frames still in service (capacity minus quarantined).
  uint64_t usable_frames = 0;
  /// Optimistic-path accounting (all zero in mutex mode): hits served
  /// without the shard latch, probe attempts abandoned, and version
  /// validations lost against a concurrent writer.
  uint64_t optimistic_hits = 0;
  uint64_t optimistic_retries = 0;
  uint64_t version_conflicts = 0;
  /// Async read pipeline: batches submitted and reads delivered through it
  /// (zero when async reads are off).
  uint64_t batch_submits = 0;
  uint64_t async_reads = 0;
  /// Service-wide degraded-mode accounting, mirrored into every shard's
  /// stats (degradation is a service property, not a shard one):
  /// the current DegradedState as an integer and how many times the
  /// service has entered degraded mode (0 or 1 today — one-way).
  uint64_t degraded = 0;
  uint64_t degraded_entries = 0;
};

/// Thread-safe shared buffer: one logical pool sharded across N
/// BufferManager-backed partitions. Page-id hash picks the shard, a
/// per-shard latch serializes that shard's buffer and policy, and policy
/// work (victim scans, ASB adaptation) stays confined per shard so the
/// lookup path of other shards never waits on it. Handles returned by
/// Fetch release their pin through the owning shard's latch, so they may be
/// dropped from any thread at any time.
///
/// Read-only construction serves query traffic over a shared DiskManager
/// image: each shard reads through its own ReadOnlyDiskView (per-shard I/O
/// counters, no device races), and New() fails with kUnimplemented.
/// Writable construction (mutable disk + WAL) additionally serves page
/// creation and durability: each shard reads and writes through a
/// WritableDiskView serialized on one device mutex, every shard's buffer
/// holds the WAL, and Commit/Checkpoint gather the dirty pages of ALL
/// shards into one atomic log group.
class BufferService final : public core::PageSource {
 public:
  BufferService(const storage::DiskManager& disk,
                const BufferServiceConfig& config);

  /// Writable service over `disk`, with the write-ahead rule enforced by
  /// `wal` (both must outlive the service). The read path is byte-for-byte
  /// the read-only service's; only write-backs and New() differ.
  BufferService(storage::DiskManager* disk, wal::WalManager* wal,
                const BufferServiceConfig& config);
  ~BufferService() override;

  BufferService(const BufferService&) = delete;
  BufferService& operator=(const BufferService&) = delete;

  /// Thread-safe pinned fetch through the page's shard. Errors are
  /// per-shard and per-page: a fetch on a degraded shard fails with the
  /// recorded terminal status (or kResourceExhausted when quarantine left
  /// the shard nothing evictable) while every other shard keeps serving.
  core::StatusOr<core::PageHandle> Fetch(storage::PageId page,
                                         const core::AccessContext& ctx)
      override;

  /// Batched fetch: optimistic hits are served latch-free first, then the
  /// remaining pages are grouped by shard and pushed through each shard's
  /// batched miss pipeline (async submit, out-of-order completion) under
  /// one latch acquisition per shard. Results land in input order. All of
  /// a batch's handles may be alive at once — callers must leave every
  /// shard (batch size + 1) frames of pin headroom.
  void FetchBatch(std::span<const storage::PageId> pages,
                  const core::AccessContext& ctx,
                  std::vector<core::StatusOr<core::PageHandle>>* out)
      override;

  /// True in both latch modes — the service's batch path amortizes latch
  /// acquisitions even without the async device, and keeping it
  /// mode-independent means a mutex/optimistic A/B isolates the latch
  /// protocol rather than the batching.
  bool PrefersBatchedReads() const override { return true; }

  /// Per-shard pin budget: the page-id hash can land a whole batch on one
  /// shard, so the safe chunk is the smallest shard's frame count minus
  /// headroom for the caller's own enclosing pins. A batch wider than this
  /// can pin a shard wall-to-wall and trip the all-pinned abort.
  size_t BatchPinBudget() const override {
    const size_t per_shard = total_frames_ / shards_.size();
    return per_shard > 3 ? per_shard - 2 : 1;
  }

  /// Writable service: allocates a fresh page on the shared device and
  /// installs it zero-filled and dirty in its shard. Read-only service:
  /// always kUnimplemented.
  core::StatusOr<core::PageHandle> New(const core::AccessContext& ctx)
      override;

  /// Writable service only. Gathers the dirty, not-yet-logged pages of
  /// every shard (all shard latches held, taken in index order) into ONE
  /// atomic WAL commit group and waits for durability. kUnimplemented on a
  /// read-only service.
  core::Status Commit(const core::AccessContext& ctx = {});

  /// Commit, then append one durable checkpoint record covering the whole
  /// service. Strict mode (the default) first forces every shard's dirty
  /// frames to the data device; fuzzy mode instead scans the shards —
  /// one latch at a time, concurrently with mutators — for the redo
  /// low-water mark, stamps it into the record, and leaves the dirty pages
  /// to the background flusher. With truncate_wal the fuzzy path then
  /// zeros the dead log segments below the horizon.
  core::Status Checkpoint(const core::AccessContext& ctx = {});

  /// One background write-back round over shard `s` (writable service with
  /// background write-back configured; returns 0 otherwise): when the
  /// shard's dirty ratio is above the low watermark, harvests up to
  /// `max_pages` flush candidates (oldest rec_lsn first) and writes them
  /// out in page-id order under the shard latch. Returns the number of
  /// pages written back. Called by the FlushCoordinator workers; exposed
  /// for tests.
  core::StatusOr<size_t> FlushShardBatch(size_t s, size_t max_pages,
                                         const core::AccessContext& ctx = {});

  /// The background flusher (nullptr when flusher_threads == 0 or the
  /// service is read-only).
  FlushCoordinator* flusher() const { return flusher_.get(); }

  /// True when the service was constructed writable.
  bool writable() const { return writable_disk_ != nullptr; }
  wal::WalManager* wal() const { return wal_; }

  /// Write-path health (see DegradedState). Lock-free reads; safe from any
  /// thread.
  DegradedState degraded_state() const {
    return static_cast<DegradedState>(
        degraded_.load(std::memory_order_acquire));
  }
  bool degraded() const { return degraded_state() != DegradedState::kHealthy; }
  uint64_t degraded_entries() const {
    return degraded_entries_.load(std::memory_order_relaxed);
  }

  /// Called by the FlushCoordinator when it backs off a persistently
  /// failing shard: records a kFlushBackoff event in the shard's collector
  /// (takes the shard latch; no-op without metrics).
  void NoteFlushBackoff(size_t shard, uint64_t consecutive_errors,
                        uint64_t skip_rounds);

  /// Buffered image of a resident page. Quiescent use only — the returned
  /// span is unprotected against concurrent eviction.
  std::span<const std::byte> Peek(storage::PageId page) const override;

  /// True if the page is currently resident in its shard (point-in-time).
  bool Contains(storage::PageId page) const;

  size_t shard_count() const { return shards_.size(); }
  size_t total_frames() const { return total_frames_; }
  const std::string& policy_spec() const { return policy_spec_; }
  LatchMode latch_mode() const { return latch_mode_; }

  /// Shard serving `page` (stable hash of the page id).
  size_t ShardOf(storage::PageId page) const;

  /// Frame capacity of one shard (capacity split with remainder).
  size_t ShardFrames(size_t shard) const;

  /// Point-in-time counters of one shard / summed over all shards. Takes
  /// the shard latch(es).
  ShardStats StatsOfShard(size_t shard) const;
  ShardStats AggregateStats() const;

  /// The globally-published ASB candidate-set size, or 0 when the service
  /// does not run shared ASB tuning.
  size_t shared_candidate() const;
  const core::AsbSharedTuning* shared_tuning() const {
    return asb_shared_ ? &asb_tuning_ : nullptr;
  }

  /// The shard's buffer, for inspection by tests and reports. Quiescent
  /// use only (no latching).
  const core::BufferManager& shard_buffer(size_t shard) const {
    return *shards_[shard]->buffer;
  }

  /// The shard's fault-injecting device (nullptr when the service runs
  /// without a fault profile). Quiescent use only.
  const storage::FaultInjectingDevice* shard_fault_device(size_t shard) const {
    return shards_[shard]->fault.get();
  }

  /// Injected-fault counters summed over every shard device (all zero
  /// without a fault profile). Takes the shard latches.
  storage::FaultStats AggregateFaultStats() const;

  /// Flushes per-shard aggregate counters into the shard collectors
  /// (buffer totals, per-shard device reads, latch wait/acquire counts,
  /// frame-capacity gauge) and returns the snapshot merged over every
  /// shard registry in shard order — deterministic for any thread count
  /// wherever the underlying counts are. Empty without collect_metrics.
  obs::MetricsSnapshot MetricsSnapshot();

  /// Same flush, one snapshot per shard (per-shard reporting).
  std::vector<obs::MetricsSnapshot> ShardMetricsSnapshots();

  /// On-demand live stats dump: the merged metrics snapshot (or, without
  /// collect_metrics, a minimal snapshot synthesized from AggregateStats)
  /// plus service-shape gauges, rendered as Prometheus text exposition.
  /// Thread-safe; takes the shard latches like any stats read.
  std::string StatsText();

 private:
  struct Shard {
    explicit Shard(const storage::DiskManager& disk) : view(disk) {}

    storage::ReadOnlyDiskView view;
    // Writable service only: the shard's device-mutex-serialized view, used
    // in place of `view` for both reads and writes.
    std::unique_ptr<storage::WritableDiskView> writable;
    // Optional fault-injection wrapper over the shard's device; the shard's
    // buffer reads through it when the service runs a fault profile.
    std::unique_ptr<storage::FaultInjectingDevice> fault;
    std::mutex latch;
    std::unique_ptr<obs::Collector> collector;  // null without metrics
    std::unique_ptr<core::BufferManager> buffer;
    std::atomic<uint64_t> latch_waits{0};
    std::atomic<uint64_t> latch_acquires{0};
    // Delta bases of the idempotent metrics flush. Every flush samples its
    // source exactly once and advances the base saturatingly, so a source
    // that moved backwards (reset mid-run) flushes 0 instead of wrapping.
    uint64_t flushed_latch_waits = 0;
    uint64_t flushed_latch_acquires = 0;
    uint64_t flushed_disk_reads = 0;
    uint64_t flushed_optimistic_hits = 0;
    uint64_t flushed_optimistic_retries = 0;
    uint64_t flushed_version_conflicts = 0;
    uint64_t flushed_batch_submits = 0;
    uint64_t flushed_depth_sum = 0;
    uint64_t flushed_async_submitted = 0;
    uint64_t flushed_depth_buckets[storage::AsyncDeviceStats::kDepthBuckets] =
        {};
  };

  /// Shared construction body of both constructors.
  void Init(const storage::DiskManager& disk,
            const BufferServiceConfig& config);

  /// Acquires the shard latch, counting contended arrivals.
  std::unique_lock<std::mutex> LockShard(Shard& shard) const;

  /// The shard's device-level I/O counters (writable view in write mode,
  /// read-only view otherwise).
  const storage::IoStats& ShardIoStats(const Shard& shard) const {
    return shard.writable != nullptr ? shard.writable->stats()
                                     : shard.view.stats();
  }

  /// Publishes the shard's aggregate counters into its collector (latch
  /// already taken by the caller).
  void FlushShardLocked(Shard& shard);

  /// One-way transition into degraded read-only mode: first trigger wins
  /// (CAS from kHealthy), records the wal.degraded_entries counter and a
  /// kDegraded event in shard `s`'s collector. The caller must hold shard
  /// `s`'s latch (collector access). Idempotent once degraded.
  void EnterDegraded(DegradedState why, size_t s, core::StatusCode code);

  size_t total_frames_ = 0;
  // Write mode (both null on a read-only service). The device mutex
  // serializes every shard's view over the one mutable DiskManager.
  storage::DiskManager* writable_disk_ = nullptr;
  wal::WalManager* wal_ = nullptr;
  mutable std::mutex device_mu_;
  std::string policy_spec_;
  LatchMode latch_mode_ = LatchMode::kOptimistic;
  bool collect_metrics_ = false;
  bool asb_shared_ = false;
  bool fuzzy_checkpoints_ = false;
  bool truncate_wal_ = false;
  core::AsbSharedTuning asb_tuning_;
  /// DegradedState of the write path, stored widened so the CAS in
  /// EnterDegraded stays on a plain integer. kHealthy until the first
  /// terminal write-path failure; never goes back.
  std::atomic<uint8_t> degraded_{0};
  std::atomic<uint64_t> degraded_entries_{0};
  // unique_ptr elements: Shard holds a mutex and atomics (immovable), and
  // handles outstanding anywhere keep raw pointers into the shard.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so it destructs first: the workers are joined
  // before any shard they might be flushing goes away.
  std::unique_ptr<FlushCoordinator> flusher_;
};

}  // namespace sdb::svc

#endif  // SPATIALBUFFER_SVC_BUFFER_SERVICE_H_
