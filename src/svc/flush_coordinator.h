#ifndef SPATIALBUFFER_SVC_FLUSH_COORDINATOR_H_
#define SPATIALBUFFER_SVC_FLUSH_COORDINATOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace sdb::svc {

class BufferService;

/// Construction knobs of a FlushCoordinator.
struct FlushCoordinatorOptions {
  /// Flusher threads. Shards are assigned round-robin (worker w owns
  /// shards w, w + threads, ...), so two workers never contend for one
  /// shard's latch.
  size_t threads = 1;
  /// Poll cadence while idle. A Nudge() (after every service commit) wakes
  /// the workers immediately; the timer is the backstop that keeps
  /// watermark pressure bounded between commits.
  uint32_t idle_wait_us = 200;
  /// Pages harvested per shard per round. Bounds how long one round holds
  /// a shard latch; a capped round simply re-runs without waiting.
  size_t batch_pages = 16;
  /// Failed rounds in a row on one shard before the worker starts skipping
  /// it instead of hot-spinning its failing device: after the threshold the
  /// shard sits out 2, 4, 8, ... rounds (doubling per further failure, flat
  /// at max_backoff_rounds). Any successful round resets the shard to full
  /// cadence. 0 backs off on the first failure.
  uint32_t max_consecutive_errors = 3;
  uint64_t max_backoff_rounds = 64;
};

/// Aggregate counters of one coordinator (sampled under its mutex).
struct FlushCoordinatorStats {
  uint64_t pages_flushed = 0;   ///< dirty pages written back in background
  uint64_t harvest_rounds = 0;  ///< per-shard rounds that harvested anything
  uint64_t wakeups = 0;         ///< worker wakeups (nudges + idle timer)
  uint64_t flush_errors = 0;    ///< rounds abandoned on a device error
  uint64_t backoff_skips = 0;   ///< rounds a backed-off shard sat out
};

/// Background write-back pump of a writable BufferService: N threads that
/// harvest each shard's dirty frames (oldest rec_lsn first) and write them
/// to the data device off the foreground pin path. Pure scheduling — every
/// invariant (watermarks, steal avoidance, write-ahead, pin re-checks)
/// lives in BufferService::FlushShardBatch and the BufferManager below it,
/// so a stopped coordinator degrades to the synchronous-eviction behaviour
/// rather than to anything unsafe. The service must outlive the
/// coordinator; the destructor stops and joins the workers.
class FlushCoordinator {
 public:
  FlushCoordinator(BufferService* service, FlushCoordinatorOptions options);
  ~FlushCoordinator();

  FlushCoordinator(const FlushCoordinator&) = delete;
  FlushCoordinator& operator=(const FlushCoordinator&) = delete;

  /// Wakes every worker: the dirty set may have grown (the service calls
  /// this after each commit group).
  void Nudge();

  /// Stops and joins the workers. Idempotent; the destructor calls it.
  void Stop();

  FlushCoordinatorStats stats() const;
  const FlushCoordinatorOptions& options() const { return options_; }

 private:
  void WorkerLoop(size_t worker);

  BufferService* service_;
  const FlushCoordinatorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t nudges_ = 0;  ///< monotone; workers wait on it changing
  FlushCoordinatorStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace sdb::svc

#endif  // SPATIALBUFFER_SVC_FLUSH_COORDINATOR_H_
