#include "svc/flush_coordinator.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/macros.h"
#include "svc/buffer_service.h"

namespace sdb::svc {

FlushCoordinator::FlushCoordinator(BufferService* service,
                                   FlushCoordinatorOptions options)
    : service_(service), options_(options) {
  SDB_CHECK(service_ != nullptr);
  SDB_CHECK_MSG(options_.threads > 0, "coordinator needs at least one worker");
  SDB_CHECK_MSG(options_.batch_pages > 0, "flusher batch must hold pages");
  workers_.reserve(options_.threads);
  for (size_t w = 0; w < options_.threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

FlushCoordinator::~FlushCoordinator() { Stop(); }

void FlushCoordinator::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++nudges_;
  }
  cv_.notify_all();
}

void FlushCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

FlushCoordinatorStats FlushCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FlushCoordinator::WorkerLoop(size_t worker) {
  const core::AccessContext ctx;  // background traffic: query id 0
  uint64_t seen_nudges = 0;
  // Per-shard failure state, worker-local: shards are owned round-robin, so
  // no other worker ever touches these slots. A persistently failing shard
  // backs off exponentially instead of burning a core against its device.
  std::vector<uint64_t> consecutive_errors(service_->shard_count(), 0);
  std::vector<uint64_t> skip_rounds(service_->shard_count(), 0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(options_.idle_wait_us),
                   [this, seen_nudges] {
                     return stop_ || nudges_ != seen_nudges;
                   });
      if (stop_) return;
      seen_nudges = nudges_;
      ++stats_.wakeups;
    }
    // One pass over this worker's shards; while any shard still yields a
    // full batch, pass again immediately — the dirty set is outrunning the
    // idle cadence (e.g. right after a large commit group).
    bool saturated = true;
    while (saturated) {
      saturated = false;
      for (size_t s = worker; s < service_->shard_count();
           s += options_.threads) {
        if (skip_rounds[s] > 0) {
          --skip_rounds[s];
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.backoff_skips;
          continue;
        }
        const core::StatusOr<size_t> flushed =
            service_->FlushShardBatch(s, options_.batch_pages, ctx);
        if (!flushed.ok()) {
          // The shard keeps its dirty frames (FlushFrames failed mid-batch
          // leaves unflushed candidates dirty); eviction's synchronous
          // fallback still guards correctness, so record, back off the
          // shard if it keeps failing, and move on.
          ++consecutive_errors[s];
          uint64_t backoff = 0;
          if (consecutive_errors[s] > options_.max_consecutive_errors) {
            const uint64_t over =
                consecutive_errors[s] - options_.max_consecutive_errors;
            backoff = over >= 63 ? options_.max_backoff_rounds
                                 : std::min<uint64_t>(
                                       uint64_t{1} << over,
                                       options_.max_backoff_rounds);
            skip_rounds[s] = backoff;
          }
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.flush_errors;
          }
          if (backoff > 0) {
            service_->NoteFlushBackoff(s, consecutive_errors[s], backoff);
          }
          continue;
        }
        consecutive_errors[s] = 0;
        std::lock_guard<std::mutex> lock(mu_);
        if (*flushed > 0) {
          ++stats_.harvest_rounds;
          stats_.pages_flushed += *flushed;
          if (*flushed == options_.batch_pages) saturated = true;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
    }
  }
}

}  // namespace sdb::svc
