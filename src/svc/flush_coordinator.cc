#include "svc/flush_coordinator.h"

#include <chrono>

#include "common/macros.h"
#include "svc/buffer_service.h"

namespace sdb::svc {

FlushCoordinator::FlushCoordinator(BufferService* service,
                                   FlushCoordinatorOptions options)
    : service_(service), options_(options) {
  SDB_CHECK(service_ != nullptr);
  SDB_CHECK_MSG(options_.threads > 0, "coordinator needs at least one worker");
  SDB_CHECK_MSG(options_.batch_pages > 0, "flusher batch must hold pages");
  workers_.reserve(options_.threads);
  for (size_t w = 0; w < options_.threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

FlushCoordinator::~FlushCoordinator() { Stop(); }

void FlushCoordinator::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++nudges_;
  }
  cv_.notify_all();
}

void FlushCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

FlushCoordinatorStats FlushCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FlushCoordinator::WorkerLoop(size_t worker) {
  const core::AccessContext ctx;  // background traffic: query id 0
  uint64_t seen_nudges = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(options_.idle_wait_us),
                   [this, seen_nudges] {
                     return stop_ || nudges_ != seen_nudges;
                   });
      if (stop_) return;
      seen_nudges = nudges_;
      ++stats_.wakeups;
    }
    // One pass over this worker's shards; while any shard still yields a
    // full batch, pass again immediately — the dirty set is outrunning the
    // idle cadence (e.g. right after a large commit group).
    bool saturated = true;
    while (saturated) {
      saturated = false;
      for (size_t s = worker; s < service_->shard_count();
           s += options_.threads) {
        const core::StatusOr<size_t> flushed =
            service_->FlushShardBatch(s, options_.batch_pages, ctx);
        std::lock_guard<std::mutex> lock(mu_);
        if (!flushed.ok()) {
          // The shard keeps its dirty frames (FlushFrames failed mid-batch
          // leaves unflushed candidates dirty); eviction's synchronous
          // fallback still guards correctness, so record and move on.
          ++stats_.flush_errors;
          continue;
        }
        if (*flushed > 0) {
          ++stats_.harvest_rounds;
          stats_.pages_flushed += *flushed;
          if (*flushed == options_.batch_pages) saturated = true;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
    }
  }
}

}  // namespace sdb::svc
