#include "obs/telemetry.h"

#include <cstdio>

#include "obs/export.h"

namespace sdb::obs {

namespace {

/// Running totals the hub tracks, read off one merged snapshot. Missing
/// metrics read as zero, so the hub works against partial registries
/// (e.g. a service without latch instrumentation).
struct Totals {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t latch_waits = 0;
  uint64_t latch_acquires = 0;
  uint64_t disk_reads = 0;
  uint64_t io_queue_depth = 0;
  uint64_t quarantined_frames = 0;
  uint64_t asb_candidate = 0;
};

Totals ReadTotals(const MetricsSnapshot& snapshot) {
  Totals totals;
  for (const MetricValue& metric : snapshot) {
    if (metric.name == "buffer.requests") {
      totals.requests = metric.count;
    } else if (metric.name == "buffer.hits") {
      totals.hits = metric.count;
    } else if (metric.name == "svc.latch_waits") {
      totals.latch_waits = metric.count;
    } else if (metric.name == "svc.latch_acquires") {
      totals.latch_acquires = metric.count;
    } else if (metric.name == "svc.disk_reads") {
      totals.disk_reads = metric.count;
    } else if (metric.name == "io.queue_depth") {
      totals.io_queue_depth = static_cast<uint64_t>(metric.value);
    } else if (metric.name == "io.quarantined_frames") {
      totals.quarantined_frames = metric.count;
    } else if (metric.name == "asb.candidate") {
      totals.asb_candidate = static_cast<uint64_t>(metric.value);
    }
  }
  return totals;
}

uint64_t SatDelta(uint64_t now, uint64_t base) {
  return now >= base ? now - base : 0;
}

}  // namespace

TelemetryHub::TelemetryHub(const TelemetryHubOptions& options)
    : interval_(options.window_clock_interval) {}

bool TelemetryHub::WantsSample(uint64_t clock) const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock >= last_clock_ + interval_ && clock > last_clock_;
}

void TelemetryHub::Sample(uint64_t clock, const MetricsSnapshot& snapshot,
                          uint64_t asb_candidate) {
  const Totals totals = ReadTotals(snapshot);
  std::lock_guard<std::mutex> lock(mu_);
  if (have_base_ && clock <= last_clock_) return;
  TelemetryWindow window;
  window.clock = clock;
  window.requests = SatDelta(totals.requests, base_.requests);
  window.hits = SatDelta(totals.hits, base_.hits);
  window.hit_rate = window.requests == 0
                        ? 0.0
                        : static_cast<double>(window.hits) /
                              static_cast<double>(window.requests);
  window.latch_waits = SatDelta(totals.latch_waits, base_.latch_waits);
  window.latch_acquires =
      SatDelta(totals.latch_acquires, base_.latch_acquires);
  window.disk_reads = SatDelta(totals.disk_reads, base_.disk_reads);
  window.io_queue_depth = totals.io_queue_depth;
  window.quarantined_frames = totals.quarantined_frames;
  window.asb_candidate =
      asb_candidate != 0 ? asb_candidate : totals.asb_candidate;
  // The base keeps running totals (not deltas) so the next window's
  // subtraction is against absolute counter state.
  base_.requests = totals.requests;
  base_.hits = totals.hits;
  base_.latch_waits = totals.latch_waits;
  base_.latch_acquires = totals.latch_acquires;
  base_.disk_reads = totals.disk_reads;
  last_clock_ = clock;
  // The very first sample establishes the base; recording it as a window
  // would fold startup noise into the series.
  if (!have_base_) {
    have_base_ = true;
    return;
  }
  windows_.push_back(window);
}

void TelemetryHub::Mark(uint64_t clock, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  marks_.push_back(TelemetryMark{clock, std::string(label)});
}

std::vector<TelemetryWindow> TelemetryHub::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_;
}

std::vector<TelemetryMark> TelemetryHub::Marks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return marks_;
}

bool WriteTimeSeriesJson(const std::string& path,
                         const std::vector<TelemetryWindow>& windows,
                         const std::vector<TelemetryMark>& marks) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = true;
  for (const TelemetryWindow& w : windows) {
    ok = std::fprintf(
             file,
             "{\"schema_version\":%d,\"kind\":\"window\",\"clock\":%llu,"
             "\"requests\":%llu,\"hits\":%llu,\"hit_rate\":%.6f,"
             "\"latch_waits\":%llu,\"latch_acquires\":%llu,"
             "\"disk_reads\":%llu,\"io_queue_depth\":%llu,"
             "\"quarantined_frames\":%llu,\"asb_candidate\":%llu}\n",
             kBenchJsonSchemaVersion,
             static_cast<unsigned long long>(w.clock),
             static_cast<unsigned long long>(w.requests),
             static_cast<unsigned long long>(w.hits), w.hit_rate,
             static_cast<unsigned long long>(w.latch_waits),
             static_cast<unsigned long long>(w.latch_acquires),
             static_cast<unsigned long long>(w.disk_reads),
             static_cast<unsigned long long>(w.io_queue_depth),
             static_cast<unsigned long long>(w.quarantined_frames),
             static_cast<unsigned long long>(w.asb_candidate)) >= 0 &&
         ok;
  }
  for (const TelemetryMark& mark : marks) {
    ok = std::fprintf(file,
                      "{\"schema_version\":%d,\"kind\":\"mark\","
                      "\"clock\":%llu,\"label\":\"%s\"}\n",
                      kBenchJsonSchemaVersion,
                      static_cast<unsigned long long>(mark.clock),
                      mark.label.c_str()) >= 0 &&
         ok;
  }
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

}  // namespace sdb::obs
