#ifndef SPATIALBUFFER_OBS_ASB_TIMELINE_H_
#define SPATIALBUFFER_OBS_ASB_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/telemetry.h"

namespace sdb::obs {

/// One observation of ASB's candidate-set size on a logical clock.
struct AsbTimelinePoint {
  uint64_t clock = 0;
  uint64_t candidate = 0;
};

/// Convergence analysis of one workload phase (the stretch after one
/// shift mark, up to the next). "Converged" means the candidate series
/// entered and stayed inside ±tolerance of its value at the phase's end —
/// the settled size the Sec. 4.2 rule was steering toward.
struct AsbPhase {
  uint64_t shift_clock = 0;       ///< where the phase begins
  uint64_t settled_candidate = 0; ///< candidate size at the phase's end
  uint64_t converged_clock = 0;   ///< first clock inside the settled band
  bool converged = false;         ///< the series reached the band at all
  uint64_t lag = 0;               ///< converged_clock - shift_clock
};

struct AsbTimelineReport {
  std::vector<AsbPhase> phases;
};

/// Computes per-phase convergence lag of the candidate-size series.
/// `shifts` are phase-start clocks (ascending); a leading phase from clock
/// 0 is implied when the first shift is later. `tolerance` is the half
/// width of the settled band in frames.
AsbTimelineReport AnalyzeAsbTimeline(
    const std::vector<AsbTimelinePoint>& points,
    const std::vector<uint64_t>& shifts, uint64_t tolerance = 1);

/// Candidate-size series from a kAsbAdapt event stream: the clock is the
/// 1-based adaptation index (events carry no logical clock of their own),
/// the candidate is the post-adjustment size the event recorded.
std::vector<AsbTimelinePoint> AsbPointsFromEvents(
    const std::vector<Event>& events);

/// Candidate-size series from telemetry windows (clock = window clock).
std::vector<AsbTimelinePoint> AsbPointsFromWindows(
    const std::vector<TelemetryWindow>& windows);

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_ASB_TIMELINE_H_
