#ifndef SPATIALBUFFER_OBS_EXPORT_H_
#define SPATIALBUFFER_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sdb::obs {

/// Version stamped as "schema_version" into every row of every BENCH_*.json
/// writer (sweep rows, metrics dumps, the per-bench JSONL mains), so
/// downstream analysis can detect row-shape changes. Bump when a writer
/// renames, removes, or re-types a field.
///   1: implicit (rows without the field)
///   2: the field itself + concurrent-service rows (BENCH_concurrent.json)
///   3: metrics blocks in concurrent/fault rows + the BENCH_timeseries.json
///      writer (additive only — version-2 fields are unchanged)
inline constexpr int kBenchJsonSchemaVersion = 3;

/// Compact single-line JSON object of a snapshot: counters and gauges as
/// numbers, histograms as {"bounds":[...],"counts":[...],"sum":s,"n":n}.
/// Embedded verbatim into BENCH_sweep.json rows.
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Writes one JSON-Lines record per metric, each tagged with `label`
/// ({"label":...,"metric":...,...}). Truncates `path`. Returns false on I/O
/// failure. The standalone metrics dump of a bench run.
bool WriteMetricsJsonLines(const std::string& path, std::string_view label,
                           const MetricsSnapshot& snapshot);

/// Accumulates Chrome trace_event "complete" events and writes a JSON file
/// loadable in chrome://tracing or https://ui.perfetto.dev — used to render
/// the sweep runner's worker timelines and the query span traces.
/// Timestamps are from an arbitrary common origin; events are stored at
/// nanosecond resolution and written as fractional microseconds (the
/// trace_event "ts" unit), so sub-microsecond device spans stay visible.
class ChromeTraceWriter {
 public:
  /// `tid` groups events into horizontal tracks (one per worker thread).
  void AddCompleteEvent(std::string_view name, uint32_t tid,
                        uint64_t begin_us, uint64_t duration_us,
                        std::string_view category = "replay");

  /// Same, at nanosecond resolution (span traces).
  void AddCompleteEventNs(std::string_view name, uint32_t tid,
                          uint64_t begin_ns, uint64_t duration_ns,
                          std::string_view category = "trace");

  /// Names a track, so the viewer shows "worker 3" instead of a bare tid.
  void SetThreadName(uint32_t tid, std::string_view name);

  size_t event_count() const { return events_.size(); }

  /// Writes the accumulated events; returns false on I/O failure.
  bool Write(const std::string& path) const;

 private:
  struct TraceEvent {
    std::string name;
    std::string category;
    uint32_t tid = 0;
    uint64_t begin_ns = 0;
    uint64_t duration_ns = 0;
  };
  struct ThreadName {
    uint32_t tid = 0;
    std::string name;
  };
  std::vector<TraceEvent> events_;
  std::vector<ThreadName> thread_names_;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Metric names are prefixed with `prefix_`
/// and non-identifier characters become underscores ("svc.latch_waits" →
/// "sdb_svc_latch_waits"). The live stats surface of bench/db_stats and
/// svc::BufferService::StatsText.
std::string PrometheusText(const MetricsSnapshot& snapshot,
                           std::string_view prefix = "sdb");

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_EXPORT_H_
