#ifndef SPATIALBUFFER_OBS_TELEMETRY_H_
#define SPATIALBUFFER_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sdb::obs {

/// One telemetry window: the change in the merged metric state between two
/// consecutive samples, reduced to the series the roadmap questions need.
/// `clock` is the logical clock (buffer requests so far) at the window's
/// right edge, so windows line up across runs regardless of wall time.
struct TelemetryWindow {
  uint64_t clock = 0;
  uint64_t requests = 0;   ///< buffer requests in this window
  uint64_t hits = 0;       ///< buffer hits in this window
  double hit_rate = 0.0;   ///< hits / requests (0 when the window is empty)
  uint64_t latch_waits = 0;
  uint64_t latch_acquires = 0;
  uint64_t disk_reads = 0;
  uint64_t io_queue_depth = 0;       ///< gauge: depth at sample time
  uint64_t quarantined_frames = 0;   ///< gauge: total at sample time
  uint64_t asb_candidate = 0;        ///< gauge: candidate-set size

  bool operator==(const TelemetryWindow&) const = default;
};

/// A labelled point on the logical clock (e.g. "workload shift"), kept with
/// the windows so downstream analysis can align phase changes with the
/// series.
struct TelemetryMark {
  uint64_t clock = 0;
  std::string label;
};

struct TelemetryHubOptions {
  /// Take a sample every time the logical clock advances by this many
  /// ticks past the previous sample. 0 samples on every call.
  uint64_t window_clock_interval = 1 << 12;
};

/// Thread-safe windowed time-series accumulator. A poller (bench thread,
/// service dump hook) calls Sample() with the merged service snapshot; the
/// hub keeps saturating deltas of the counter series and the latest gauge
/// values per window. Sampling cost is one snapshot scan under a mutex —
/// nothing on the buffer hot path ever touches the hub.
class TelemetryHub {
 public:
  explicit TelemetryHub(const TelemetryHubOptions& options = {});

  /// True when `clock` has advanced a full interval past the last sample —
  /// lets the poller skip snapshot assembly entirely between windows.
  bool WantsSample(uint64_t clock) const;

  /// Closes a window at `clock` over the given merged snapshot.
  /// `asb_candidate` overrides the "asb.candidate" gauge when nonzero
  /// (the shared-tuning candidate size is not a registry metric).
  /// Windows with no clock progress are dropped.
  void Sample(uint64_t clock, const MetricsSnapshot& snapshot,
              uint64_t asb_candidate = 0);

  void Mark(uint64_t clock, std::string_view label);

  std::vector<TelemetryWindow> Windows() const;
  std::vector<TelemetryMark> Marks() const;

 private:
  const uint64_t interval_;
  mutable std::mutex mu_;
  uint64_t last_clock_ = 0;
  bool have_base_ = false;
  TelemetryWindow base_;  ///< running totals at the last sample
  std::vector<TelemetryWindow> windows_;
  std::vector<TelemetryMark> marks_;
};

/// Writes the series as JSON Lines — one {"kind":"window",...} record per
/// window and one {"kind":"mark",...} per mark, each stamped with
/// schema_version. The BENCH_timeseries.json format. Returns false on I/O
/// failure.
bool WriteTimeSeriesJson(const std::string& path,
                         const std::vector<TelemetryWindow>& windows,
                         const std::vector<TelemetryMark>& marks);

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_TELEMETRY_H_
