#include "obs/asb_timeline.h"

namespace sdb::obs {

namespace {

uint64_t AbsDiff(uint64_t a, uint64_t b) { return a > b ? a - b : b - a; }

/// Convergence within [begin, end): find the last point outside the
/// settled band; convergence starts at the next point inside it.
AsbPhase AnalyzePhase(const std::vector<AsbTimelinePoint>& points,
                      size_t begin, size_t end, uint64_t shift_clock,
                      uint64_t tolerance) {
  AsbPhase phase;
  phase.shift_clock = shift_clock;
  if (begin >= end) return phase;
  phase.settled_candidate = points[end - 1].candidate;
  size_t first_settled = begin;
  for (size_t i = begin; i < end; ++i) {
    if (AbsDiff(points[i].candidate, phase.settled_candidate) > tolerance) {
      first_settled = i + 1;
    }
  }
  if (first_settled < end) {
    phase.converged = true;
    phase.converged_clock = points[first_settled].clock;
    phase.lag = phase.converged_clock > shift_clock
                    ? phase.converged_clock - shift_clock
                    : 0;
  }
  return phase;
}

}  // namespace

AsbTimelineReport AnalyzeAsbTimeline(
    const std::vector<AsbTimelinePoint>& points,
    const std::vector<uint64_t>& shifts, uint64_t tolerance) {
  AsbTimelineReport report;
  // Phase boundaries: an implied phase from clock 0, then one per shift.
  std::vector<uint64_t> starts;
  if (shifts.empty() || shifts.front() > 0) starts.push_back(0);
  starts.insert(starts.end(), shifts.begin(), shifts.end());
  size_t cursor = 0;
  for (size_t p = 0; p < starts.size(); ++p) {
    const uint64_t phase_end_clock =
        p + 1 < starts.size() ? starts[p + 1] : ~uint64_t{0};
    while (cursor < points.size() && points[cursor].clock < starts[p]) {
      ++cursor;
    }
    size_t end = cursor;
    while (end < points.size() && points[end].clock < phase_end_clock) {
      ++end;
    }
    report.phases.push_back(
        AnalyzePhase(points, cursor, end, starts[p], tolerance));
    cursor = end;
  }
  return report;
}

std::vector<AsbTimelinePoint> AsbPointsFromEvents(
    const std::vector<Event>& events) {
  std::vector<AsbTimelinePoint> points;
  uint64_t index = 0;
  for (const Event& event : events) {
    if (event.kind != EventKind::kAsbAdapt) continue;
    points.push_back(AsbTimelinePoint{++index, event.c});
  }
  return points;
}

std::vector<AsbTimelinePoint> AsbPointsFromWindows(
    const std::vector<TelemetryWindow>& windows) {
  std::vector<AsbTimelinePoint> points;
  points.reserve(windows.size());
  for (const TelemetryWindow& window : windows) {
    points.push_back(AsbTimelinePoint{window.clock, window.asb_candidate});
  }
  return points;
}

}  // namespace sdb::obs
