#include "obs/metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace sdb::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1, 0) {
  SDB_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must ascend");
}

void Histogram::MergeFrom(std::span<const uint64_t> counts, double sum,
                          uint64_t observations) {
  SDB_CHECK_MSG(counts.size() == counts_.size(),
                "histogram merge with mismatched bucket counts");
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += counts[b];
  sum_ += sum;
  observations_ += observations;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kCounter,
                "metric re-registered with a different kind");
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kGauge,
                "metric re-registered with a different kind");
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(bounds);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kHistogram,
                "metric re-registered with a different kind");
  Histogram* histogram = it->second.histogram.get();
  SDB_CHECK_MSG(histogram->bounds().size() == bounds.size() &&
                    std::equal(bounds.begin(), bounds.end(),
                               histogram->bounds().begin()),
                "histogram re-registered with different bounds");
  return histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricValue value;
    value.name = name;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.count = entry.counter->value();
        break;
      case MetricKind::kGauge:
        value.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        value.bounds = entry.histogram->bounds();
        value.bucket_counts = entry.histogram->counts();
        value.value = entry.histogram->sum();
        value.observations = entry.histogram->observations();
        break;
    }
    snapshot.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::Merge(const MetricsSnapshot& snapshot) {
  for (const MetricValue& value : snapshot) {
    switch (value.kind) {
      case MetricKind::kCounter:
        GetCounter(value.name)->Add(value.count);
        break;
      case MetricKind::kGauge: {
        Gauge* gauge = GetGauge(value.name);
        gauge->Set(std::max(gauge->value(), value.value));
        break;
      }
      case MetricKind::kHistogram:
        GetHistogram(value.name, value.bounds)
            ->MergeFrom(value.bucket_counts, value.value,
                        value.observations);
        break;
    }
  }
}

}  // namespace sdb::obs
