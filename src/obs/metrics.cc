#include "obs/metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace sdb::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1, 0) {
  SDB_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must ascend");
}

void Histogram::MergeFrom(std::span<const uint64_t> counts, double sum,
                          uint64_t observations) {
  SDB_CHECK_MSG(counts.size() == counts_.size(),
                "histogram merge with mismatched bucket counts");
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += counts[b];
  sum_ += sum;
  observations_ += observations;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kCounter,
                "metric re-registered with a different kind");
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kGauge,
                "metric re-registered with a different kind");
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(bounds);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  SDB_CHECK_MSG(it->second.kind == MetricKind::kHistogram,
                "metric re-registered with a different kind");
  Histogram* histogram = it->second.histogram.get();
  SDB_CHECK_MSG(histogram->bounds().size() == bounds.size() &&
                    std::equal(bounds.begin(), bounds.end(),
                               histogram->bounds().begin()),
                "histogram re-registered with different bounds");
  return histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricValue value;
    value.name = name;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.count = entry.counter->value();
        break;
      case MetricKind::kGauge:
        value.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        value.bounds = entry.histogram->bounds();
        value.bucket_counts = entry.histogram->counts();
        value.value = entry.histogram->sum();
        value.observations = entry.histogram->observations();
        break;
    }
    snapshot.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::Merge(const MetricsSnapshot& snapshot) {
  for (const MetricValue& value : snapshot) {
    switch (value.kind) {
      case MetricKind::kCounter:
        GetCounter(value.name)->Add(value.count);
        break;
      case MetricKind::kGauge: {
        Gauge* gauge = GetGauge(value.name);
        gauge->Set(std::max(gauge->value(), value.value));
        break;
      }
      case MetricKind::kHistogram:
        GetHistogram(value.name, value.bounds)
            ->MergeFrom(value.bucket_counts, value.value,
                        value.observations);
        break;
    }
  }
}

double HistogramQuantile(std::span<const double> bounds,
                         std::span<const uint64_t> counts, double q) {
  uint64_t total = 0;
  for (const uint64_t count : counts) total += count;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, nearest-rank flavor).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] < rank) {
      cumulative += counts[b];
      continue;
    }
    // Overflow bucket: no upper edge to interpolate toward, so saturate at
    // the histogram's top bound.
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double within =
        static_cast<double>(rank - cumulative) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double HistogramQuantile(const MetricValue& value, double q) {
  return HistogramQuantile(value.bounds, value.bucket_counts, q);
}

}  // namespace sdb::obs
