#ifndef SPATIALBUFFER_OBS_TRACE_H_
#define SPATIALBUFFER_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace sdb::obs {

/// What a span measures. The values nest: a kQuery span is the root of one
/// trace, kShardFetch spans are its children (one per service fetch or
/// per-shard batch group), and the kAsync* spans sit under the shard fetch
/// that submitted/harvested them. kSession spans are one-per-session roots
/// of their own trace (trace id = the session's query-id stride base), so a
/// session's sampled queries nest inside it by time containment on the
/// session's track.
enum class SpanKind : int8_t {
  kSession = 0,
  kQuery = 1,
  kShardFetch = 2,
  kAsyncSubmit = 3,
  kAsyncComplete = 4,
  /// One WAL commit group (payload = image count, flag = forced steal).
  kWalAppend = 5,
  /// Checkpoint: commit + force dirty pages + checkpoint record.
  kCheckpoint = 6,
  /// Redo recovery pass (payload = replayed pages, flag = torn tail).
  kRecovery = 7,
  /// One background flusher round over a shard (payload = pages flushed,
  /// flag = harvest hit the per-round batch cap).
  kFlush = 8,
};

/// Field packing of a kSpan event (see EventKind::kSpan):
///   query = trace id, frame = parent span id << 16 | span id,
///   a = track << 32 | kind payload, b = begin ns, c = duration ns.
inline uint16_t SpanIdOf(const Event& event) {
  return static_cast<uint16_t>(event.frame & 0xffffu);
}
inline uint16_t SpanParentOf(const Event& event) {
  return static_cast<uint16_t>(event.frame >> 16);
}
inline uint32_t SpanTrackOf(const Event& event) {
  return static_cast<uint32_t>(event.a >> 32);
}
inline uint64_t SpanPayloadOf(const Event& event) {
  return event.a & 0xffffffffull;
}
inline SpanKind SpanKindOf(const Event& event) {
  return static_cast<SpanKind>(event.delta);
}

/// Construction knobs of a Tracer.
struct TracerOptions {
  /// Sample one query trace in every `sample_every` (a trace id is sampled
  /// iff id % sample_every == 0, so the choice is deterministic per query
  /// id, not per run). 0 disables query sampling entirely; 1 samples every
  /// query.
  uint64_t sample_every = 1;
  /// Span-ring capacity (EventRing semantics: keep the newest, count the
  /// rest in dropped()).
  size_t event_capacity = size_t{1} << 16;
};

/// Thread-safe sink of kSpan events. One tracer serves every session worker
/// of an executor run: emission takes a mutex, which is acceptable because
/// only sampled queries (1-in-N) ever reach it — detached call sites (a
/// null SpanContext) cost one pointer compare and never touch the tracer.
/// Timestamps are steady-clock nanoseconds since the tracer's construction.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});

  bool ShouldSample(uint64_t trace_id) const {
    return sample_every_ != 0 && trace_id % sample_every_ == 0;
  }
  uint64_t sample_every() const { return sample_every_; }

  /// Nanoseconds since the tracer's epoch.
  uint64_t NowNs() const;

  void Emit(const Event& event);

  /// Retained span events, oldest first.
  std::vector<Event> Spans() const;
  uint64_t total() const;
  uint64_t dropped() const;

  /// Renders the retained spans as a Chrome trace_event JSON timeline
  /// (chrome://tracing, ui.perfetto.dev): one track per span track
  /// (= session), spans nested by time containment. Returns false on I/O
  /// failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  const uint64_t sample_every_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  EventRing ring_;
};

/// Tracing context of one sampled trace (a query, or the enclosing
/// session). Owned by the worker thread executing that trace and threaded
/// through every layer via core::AccessContext::span, so span emission
/// needs no allocation and no thread-local state: a null pointer marks the
/// (overwhelmingly common) detached request.
struct SpanContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  /// Renderer track (the session's logical index).
  uint32_t track = 0;
  /// Innermost open span (0 = root level); maintained by ScopedSpan.
  uint16_t parent = 0;
  /// Next span id to mint; ids are a small per-trace sequence, so parent
  /// links survive the 16-bit packing. Wraps after 65535 spans per trace.
  uint16_t next_id = 1;

  uint16_t NewSpanId() { return next_id++; }
};

/// RAII span: mints an id, re-parents the context for spans opened inside
/// its scope, and emits one kSpan event on destruction. A null context (or
/// SDB_OBS=OFF) makes construction and destruction a single compare.
class ScopedSpan {
 public:
  ScopedSpan(SpanContext* span, SpanKind kind) {
    if constexpr (kEnabled) {
      if (span != nullptr && span->tracer != nullptr) Begin(span, kind);
    }
  }
  ~ScopedSpan() {
    if constexpr (kEnabled) {
      if (span_ != nullptr) End();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_page(uint64_t page) {
    if (span_ != nullptr) page_ = page;
  }
  void set_payload(uint64_t payload) {
    if (span_ != nullptr) payload_ = payload;
  }
  void set_flag(bool flag) {
    if (span_ != nullptr) flag_ = flag;
  }
  bool armed() const { return span_ != nullptr; }

 private:
  void Begin(SpanContext* span, SpanKind kind);
  void End();

  SpanContext* span_ = nullptr;
  SpanKind kind_ = SpanKind::kQuery;
  uint16_t id_ = 0;
  uint16_t saved_parent_ = 0;
  uint64_t begin_ns_ = 0;
  uint64_t page_ = 0;
  uint64_t payload_ = 0;
  bool flag_ = false;
};

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_TRACE_H_
