#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace sdb::obs {

namespace {

/// Minimal JSON string escape (metric/track names are plain identifiers,
/// but the exporters must not produce malformed output on any input).
std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string Number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

void AppendMetricBody(std::string& out, const MetricValue& metric) {
  switch (metric.kind) {
    case MetricKind::kCounter:
      out += std::to_string(metric.count);
      break;
    case MetricKind::kGauge:
      out += Number(metric.value);
      break;
    case MetricKind::kHistogram: {
      out += "{\"bounds\":[";
      for (size_t i = 0; i < metric.bounds.size(); ++i) {
        if (i != 0) out += ',';
        out += Number(metric.bounds[i]);
      }
      out += "],\"counts\":[";
      for (size_t i = 0; i < metric.bucket_counts.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(metric.bucket_counts[i]);
      }
      out += "],\"sum\":";
      out += Number(metric.value);
      out += ",\"n\":";
      out += std::to_string(metric.observations);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& metric : snapshot) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += Escape(metric.name);
    out += "\":";
    AppendMetricBody(out, metric);
  }
  out += '}';
  return out;
}

bool WriteMetricsJsonLines(const std::string& path, std::string_view label,
                           const MetricsSnapshot& snapshot) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = true;
  for (const MetricValue& metric : snapshot) {
    std::string line = "{\"schema_version\":";
    line += std::to_string(kBenchJsonSchemaVersion);
    line += ",\"label\":\"";
    line += Escape(label);
    line += "\",\"metric\":\"";
    line += Escape(metric.name);
    line += "\",\"value\":";
    AppendMetricBody(line, metric);
    line += "}\n";
    ok = std::fputs(line.c_str(), file) >= 0 && ok;
  }
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

void ChromeTraceWriter::AddCompleteEvent(std::string_view name, uint32_t tid,
                                         uint64_t begin_us,
                                         uint64_t duration_us,
                                         std::string_view category) {
  events_.push_back(TraceEvent{std::string(name), std::string(category), tid,
                               begin_us * 1000, duration_us * 1000});
}

void ChromeTraceWriter::AddCompleteEventNs(std::string_view name,
                                           uint32_t tid, uint64_t begin_ns,
                                           uint64_t duration_ns,
                                           std::string_view category) {
  events_.push_back(TraceEvent{std::string(name), std::string(category), tid,
                               begin_ns, duration_ns});
}

void ChromeTraceWriter::SetThreadName(uint32_t tid, std::string_view name) {
  thread_names_.push_back(ThreadName{tid, std::string(name)});
}

bool ChromeTraceWriter::Write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
                       file) >= 0;
  bool first = true;
  for (const ThreadName& thread : thread_names_) {
    ok = std::fprintf(
             file,
             "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
             "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
             first ? "" : ",", thread.tid, Escape(thread.name).c_str()) >=
             0 &&
         ok;
    first = false;
  }
  for (const TraceEvent& event : events_) {
    // "ts"/"dur" are microseconds; fractional digits carry the nanosecond
    // remainder (integer math — no double rounding in the output).
    ok = std::fprintf(
             file,
             "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
             "\"cat\":\"%s\",\"ts\":%" PRIu64 ".%03" PRIu64
             ",\"dur\":%" PRIu64 ".%03" PRIu64 "}",
             first ? "" : ",", event.tid, Escape(event.name).c_str(),
             Escape(event.category).c_str(), event.begin_ns / 1000,
             event.begin_ns % 1000, event.duration_ns / 1000,
             event.duration_ns % 1000) >= 0 &&
         ok;
    first = false;
  }
  ok = std::fputs("]}\n", file) >= 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

namespace {

/// "svc.latch_waits" → "sdb_svc_latch_waits": Prometheus names allow
/// [a-zA-Z0-9_:] only.
std::string PromName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!out.empty()) out += '_';
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot,
                           std::string_view prefix) {
  std::string out;
  for (const MetricValue& metric : snapshot) {
    const std::string name = PromName(prefix, metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(metric.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + Number(metric.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < metric.bucket_counts.size(); ++i) {
          cumulative += metric.bucket_counts[i];
          const std::string le = i < metric.bounds.size()
                                     ? Number(metric.bounds[i])
                                     : std::string("+Inf");
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + Number(metric.value) + "\n";
        out += name + "_count " + std::to_string(metric.observations) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace sdb::obs
