#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace sdb::obs {

namespace {

/// Minimal JSON string escape (metric/track names are plain identifiers,
/// but the exporters must not produce malformed output on any input).
std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string Number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

void AppendMetricBody(std::string& out, const MetricValue& metric) {
  switch (metric.kind) {
    case MetricKind::kCounter:
      out += std::to_string(metric.count);
      break;
    case MetricKind::kGauge:
      out += Number(metric.value);
      break;
    case MetricKind::kHistogram: {
      out += "{\"bounds\":[";
      for (size_t i = 0; i < metric.bounds.size(); ++i) {
        if (i != 0) out += ',';
        out += Number(metric.bounds[i]);
      }
      out += "],\"counts\":[";
      for (size_t i = 0; i < metric.bucket_counts.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(metric.bucket_counts[i]);
      }
      out += "],\"sum\":";
      out += Number(metric.value);
      out += ",\"n\":";
      out += std::to_string(metric.observations);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& metric : snapshot) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += Escape(metric.name);
    out += "\":";
    AppendMetricBody(out, metric);
  }
  out += '}';
  return out;
}

bool WriteMetricsJsonLines(const std::string& path, std::string_view label,
                           const MetricsSnapshot& snapshot) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = true;
  for (const MetricValue& metric : snapshot) {
    std::string line = "{\"schema_version\":";
    line += std::to_string(kBenchJsonSchemaVersion);
    line += ",\"label\":\"";
    line += Escape(label);
    line += "\",\"metric\":\"";
    line += Escape(metric.name);
    line += "\",\"value\":";
    AppendMetricBody(line, metric);
    line += "}\n";
    ok = std::fputs(line.c_str(), file) >= 0 && ok;
  }
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

void ChromeTraceWriter::AddCompleteEvent(std::string_view name, uint32_t tid,
                                         uint64_t begin_us,
                                         uint64_t duration_us,
                                         std::string_view category) {
  events_.push_back(TraceEvent{std::string(name), std::string(category), tid,
                               begin_us, duration_us});
}

void ChromeTraceWriter::SetThreadName(uint32_t tid, std::string_view name) {
  thread_names_.push_back(ThreadName{tid, std::string(name)});
}

bool ChromeTraceWriter::Write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
                       file) >= 0;
  bool first = true;
  for (const ThreadName& thread : thread_names_) {
    ok = std::fprintf(
             file,
             "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
             "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
             first ? "" : ",", thread.tid, Escape(thread.name).c_str()) >=
             0 &&
         ok;
    first = false;
  }
  for (const TraceEvent& event : events_) {
    ok = std::fprintf(
             file,
             "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
             "\"cat\":\"%s\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 "}",
             first ? "" : ",", event.tid, Escape(event.name).c_str(),
             Escape(event.category).c_str(), event.begin_us,
             event.duration_us) >= 0 &&
         ok;
    first = false;
  }
  ok = std::fputs("]}\n", file) >= 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

}  // namespace sdb::obs
