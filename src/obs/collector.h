#ifndef SPATIALBUFFER_OBS_COLLECTOR_H_
#define SPATIALBUFFER_OBS_COLLECTOR_H_

#include <cstddef>
#include <cstdint>

#include "obs/events.h"
#include "obs/metrics.h"

namespace sdb::obs {

/// Construction knobs of a Collector.
struct CollectorOptions {
  /// Event-ring capacity: 0 = no events, EventRing::kUnbounded = keep all
  /// (required for access-trace recording and full adaptation traces).
  size_t event_capacity = 4096;
  /// Record every buffer request as a kPageAccess event (trace-recording
  /// mode; expensive — one event per request).
  bool record_accesses = false;
  /// Sliding-window length (in buffer requests) of the windowed hit-ratio
  /// metric.
  size_t window = 1024;
};

/// One replay's observability sink: a metrics registry plus a structured
/// event ring. A collector belongs to exactly one BufferManager at a time
/// and is not thread-safe — the concurrent sweep runner creates one
/// collector per replay task and merges the snapshots deterministically
/// after the join.
///
/// Overhead contract: with no collector attached (the default) every
/// instrumentation site in the buffer/policy hot paths is one pointer
/// compare; compiled with SDB_OBS=OFF the sites vanish entirely. With a
/// collector attached, the per-request cost is a handful of plain counter
/// increments, per-eviction cost adds two histogram observations plus an
/// O(frames) victim-recency-rank scan, and event pushes are copies into a
/// preallocated ring.
class Collector {
 public:
  explicit Collector(const CollectorOptions& options = CollectorOptions{})
      : events_(options.event_capacity),
        record_accesses_(options.record_accesses),
        window_(options.window == 0 ? 1 : options.window) {
    requests_ = metrics_.GetCounter("buffer.requests");
    hits_ = metrics_.GetCounter("buffer.hits");
    misses_ = metrics_.GetCounter("buffer.misses");
    static constexpr double kRatioBounds[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                              0.6, 0.7, 0.8, 0.9, 1.0};
    window_ratio_ = metrics_.GetHistogram("buffer.window_hit_ratio",
                                          kRatioBounds);
    window_ratio_last_ = metrics_.GetGauge("buffer.window_hit_ratio.last");
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventRing& events() { return events_; }
  const EventRing& events() const { return events_; }
  bool record_accesses() const { return record_accesses_; }
  size_t window() const { return window_; }

  /// Called by BufferManager on every Fetch/New. Maintains the request
  /// counters and the sliding-window hit ratio; in trace-recording mode
  /// also appends a kPageAccess event.
  void OnBufferRequest(uint64_t page, uint64_t query, bool hit) {
    requests_->Add();
    hit ? hits_->Add() : misses_->Add();
    window_hits_ += hit ? 1 : 0;
    if (++window_fill_ == window_) {
      const double ratio = static_cast<double>(window_hits_) /
                           static_cast<double>(window_);
      window_ratio_->Observe(ratio);
      window_ratio_last_->Set(ratio);
      window_fill_ = 0;
      window_hits_ = 0;
    }
    if (record_accesses_) {
      Event event;
      event.kind = EventKind::kPageAccess;
      event.flag = hit;
      event.page = page;
      event.query = query;
      events_.Push(event);
    }
  }

 private:
  MetricsRegistry metrics_;
  EventRing events_;
  const bool record_accesses_;
  const size_t window_;
  Counter* requests_;
  Counter* hits_;
  Counter* misses_;
  Histogram* window_ratio_;
  Gauge* window_ratio_last_;
  size_t window_fill_ = 0;
  size_t window_hits_ = 0;
};

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_COLLECTOR_H_
