#include "obs/events.h"

namespace sdb::obs {

EventRing::EventRing(size_t capacity) : capacity_(capacity) {
  if (capacity_ != 0 && capacity_ != kUnbounded) {
    events_.reserve(capacity_);
  }
}

void EventRing::Push(const Event& event) {
  ++total_;
  if (capacity_ == 0) return;
  if (capacity_ == kUnbounded || events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot; head_ advances to the next-oldest.
  events_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

void EventRing::Clear() {
  events_.clear();
  head_ = 0;
  total_ = 0;
}

std::vector<Event> EventRing::Snapshot() const {
  std::vector<Event> out;
  out.reserve(events_.size());
  ForEach([&out](const Event& event) { out.push_back(event); });
  return out;
}

}  // namespace sdb::obs
