#ifndef SPATIALBUFFER_OBS_EVENTS_H_
#define SPATIALBUFFER_OBS_EVENTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdb::obs {

/// What happened. The stream generalizes the one-off Fig. 14 candidate
/// trace: anything that wants to watch the buffer adapt — benches, tests,
/// live dashboards — consumes these events instead of growing private hooks.
enum class EventKind : uint8_t {
  /// A page left the buffer. page = victim, frame = its frame,
  /// flag = it was dirty (written back).
  kEviction,
  /// ASB bound to a buffer. a = main capacity, b = overflow capacity,
  /// c = initial candidate-set size, page = adaptation step (in frames).
  kAsbInit,
  /// An overflow hit triggered the Sec. 4.2 adaptation rule.
  /// a = overflow pages the spatial criterion ranks above the hit page,
  /// b = overflow pages LRU ranks above it, delta = resulting change
  /// direction (-1 spatial misjudged / 0 tie / +1 LRU misjudged),
  /// c = the candidate-set size after the (clamped) adjustment,
  /// page = the overflow page that was hit, frame = its frame.
  kAsbAdapt,
  /// One buffer request (only recorded when Collector::record_accesses is
  /// set — this is the trace-recording mode). page = requested page,
  /// flag = it was a hit.
  kPageAccess,
  /// One failed read attempt during a fetch. page = the page, frame = the
  /// staging frame, flag = the failure is retryable, a = failures so far
  /// (before this one), b = core::StatusCode of the failure.
  kIoFault,
  /// A fetch succeeded after at least one failed attempt. page/frame as in
  /// kIoFault, a = how many attempts failed before the clean read.
  kIoRecovered,
  /// A frame was taken out of service after a terminal read failure.
  /// page = the page that poisoned it, frame = the quarantined frame,
  /// a = quarantined frames in this buffer after the event.
  kFrameQuarantined,
  /// One closed tracing span (see obs/trace.h). query = trace id,
  /// delta = SpanKind, frame = parent span id << 16 | span id,
  /// a = track << 32 | kind-specific payload, b = begin ns (tracer epoch),
  /// c = duration ns, page = page id when the span covers one page.
  kSpan,
  /// The service entered degraded read-only mode. a = the trigger
  /// (svc::DegradedState as an integer), b = core::StatusCode of the error
  /// that tripped it, frame = the shard that observed the trigger.
  kDegraded,
  /// The background flusher backed off a persistently failing shard instead
  /// of hot-spinning on it. frame = the shard, a = consecutive failed flush
  /// rounds, b = harvest rounds the shard will now be skipped for.
  kFlushBackoff,
};

/// One structured event. Plain 48-byte POD; pushing is a copy into a
/// preallocated ring slot.
struct Event {
  EventKind kind = EventKind::kEviction;
  int8_t delta = 0;   ///< kAsbAdapt: -1 / 0 / +1
  bool flag = false;  ///< kEviction: dirty; kPageAccess: hit
  uint32_t frame = 0;
  uint64_t query = 0;  ///< query id of the access that caused the event
  uint64_t page = 0;
  uint64_t a = 0;  ///< kind-specific payload, see EventKind
  uint64_t b = 0;
  uint64_t c = 0;
};

/// Bounded ring buffer of events (capacity 0 = record nothing, kUnbounded =
/// grow without limit, else keep the most recent `capacity`). Push never
/// allocates once the ring is at capacity; `dropped()` says how many events
/// fell off the front, so consumers can tell a complete stream from a tail.
class EventRing {
 public:
  static constexpr size_t kUnbounded = static_cast<size_t>(-1);

  explicit EventRing(size_t capacity = 4096);

  void Push(const Event& event);

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - events_.size(); }
  void Clear();

  /// Visits the retained events in chronological order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = events_.size();
    for (size_t i = 0; i < n; ++i) {
      fn(events_[(head_ + i) % (n == 0 ? 1 : n)]);
    }
  }

  /// Retained events, oldest first.
  std::vector<Event> Snapshot() const;

 private:
  size_t capacity_;
  std::vector<Event> events_;
  size_t head_ = 0;  ///< index of the oldest event once the ring wrapped
  uint64_t total_ = 0;
};

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_EVENTS_H_
