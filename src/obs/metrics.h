#ifndef SPATIALBUFFER_OBS_METRICS_H_
#define SPATIALBUFFER_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sdb::obs {

/// Compile-time master switch. Building with -DSDB_OBS_ENABLED=0 (CMake
/// option SDB_OBS=OFF) turns every instrumentation site in the buffer and
/// policy code into dead code: BufferManager refuses to attach a collector,
/// and all emission sites sit behind `if constexpr (obs::kEnabled)`.
#ifndef SDB_OBS_ENABLED
#define SDB_OBS_ENABLED 1
#endif

inline constexpr bool kEnabled = SDB_OBS_ENABLED != 0;

/// Monotonically increasing event/sample counter. The fast path is a single
/// pointer-indirect increment; no allocation, no atomics (a registry belongs
/// to exactly one replay — the sweep runner gives every worker task its own
/// registry and merges the snapshots deterministically at join).
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-written sample (e.g. the current ASB candidate-set size). Merging
/// registries takes the maximum, which — unlike "last writer" — does not
/// depend on the order snapshots arrive in.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order, plus one implicit overflow bucket. Observe() is a short linear
/// scan over the bounds (a dozen at most) and two plain increments — no
/// allocation after construction.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    ++counts_[b];
    sum_ += value;
    ++observations_;
  }

  /// Folds another histogram's state (same bounds) into this one:
  /// bucket-wise count addition plus exact sum/observation totals.
  void MergeFrom(std::span<const uint64_t> counts, double sum,
                 uint64_t observations);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& counts() const { return counts_; }
  double sum() const { return sum_; }
  uint64_t observations() const { return observations_; }
  double mean() const {
    return observations_ == 0
               ? 0.0
               : sum_ / static_cast<double>(observations_);
  }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  double sum_ = 0.0;
  uint64_t observations_ = 0;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time value of one named metric — plain data, so snapshots can
/// cross thread joins inside result structs and merge without touching the
/// registry that produced them.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t count = 0;                  ///< counter value
  double value = 0.0;                  ///< gauge value / histogram sum
  std::vector<double> bounds;          ///< histogram only
  std::vector<uint64_t> bucket_counts; ///< histogram only (bounds + 1)
  uint64_t observations = 0;           ///< histogram only

  bool operator==(const MetricValue&) const = default;
};

/// All metrics of one registry, sorted by name.
using MetricsSnapshot = std::vector<MetricValue>;

/// Named metric registry of one buffer replay. Registration (Get*) is the
/// only allocating operation; call sites register once and keep the returned
/// handle, so the per-event fast path never touches the registry again.
/// Handles stay valid for the registry's lifetime. Not thread-safe — one
/// registry per replay, merged at join.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Re-registering an existing name with a different kind (or different
  /// histogram bounds) aborts — a metric name means one thing.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> bounds);

  size_t size() const { return entries_.size(); }

  /// Current values of every metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Folds a snapshot into this registry: counters and histogram buckets
  /// add, gauges take the maximum. Metrics absent here are registered.
  /// Merging is commutative and associative over these rules, so a merged
  /// sweep registry is identical for every worker-thread count as long as
  /// snapshots are folded in a deterministic order.
  void Merge(const MetricsSnapshot& snapshot);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // std::map keeps Snapshot() iteration sorted without a per-snapshot sort.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Quantile estimate over fixed-bucket histogram state (`counts` has
/// bounds.size() + 1 entries, the last being overflow). Linear
/// interpolation inside the covering bucket, the way fixed-bucket p50/p95/
/// p99 are conventionally reported; the overflow bucket reports the top
/// bound (the estimate saturates there). `q` in [0, 1]. Returns 0 with no
/// observations.
double HistogramQuantile(std::span<const double> bounds,
                         std::span<const uint64_t> counts, double q);

/// Same, over a snapshot value (must be a histogram metric).
double HistogramQuantile(const MetricValue& value, double q);

}  // namespace sdb::obs

#endif  // SPATIALBUFFER_OBS_METRICS_H_
