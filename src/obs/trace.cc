#include "obs/trace.h"

#include <algorithm>

#include "obs/export.h"

namespace sdb::obs {

Tracer::Tracer(const TracerOptions& options)
    : sample_every_(options.sample_every),
      epoch_(std::chrono::steady_clock::now()),
      ring_(options.event_capacity) {}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.Push(event);
}

std::vector<Event> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.Snapshot();
}

uint64_t Tracer::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.total();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.dropped();
}

namespace {

const char* SpanName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSession:
      return "session";
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kShardFetch:
      return "shard_fetch";
    case SpanKind::kAsyncSubmit:
      return "async_submit";
    case SpanKind::kAsyncComplete:
      return "async_complete";
    case SpanKind::kWalAppend:
      return "wal_append";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kRecovery:
      return "recovery";
    case SpanKind::kFlush:
      return "flush";
  }
  return "span";
}

}  // namespace

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::vector<Event> spans = Spans();
  // Oldest-first by begin time keeps the renderer's nesting stable even
  // though spans are ring-ordered by *end* time.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Event& l, const Event& r) { return l.b < r.b; });
  ChromeTraceWriter writer;
  std::vector<uint32_t> tracks;
  for (const Event& span : spans) {
    if (span.kind != EventKind::kSpan) continue;
    const uint32_t track = SpanTrackOf(span);
    if (std::find(tracks.begin(), tracks.end(), track) == tracks.end()) {
      tracks.push_back(track);
      writer.SetThreadName(track, "session " + std::to_string(track));
    }
    std::string name = SpanName(SpanKindOf(span));
    name += " #";
    name += std::to_string(span.query);
    name += ".";
    name += std::to_string(SpanIdOf(span));
    writer.AddCompleteEventNs(name, track, span.b, span.c, "trace");
  }
  return writer.Write(path);
}

void ScopedSpan::Begin(SpanContext* span, SpanKind kind) {
  span_ = span;
  kind_ = kind;
  id_ = span->NewSpanId();
  saved_parent_ = span->parent;
  span->parent = id_;
  begin_ns_ = span->tracer->NowNs();
}

void ScopedSpan::End() {
  const uint64_t end_ns = span_->tracer->NowNs();
  Event event;
  event.kind = EventKind::kSpan;
  event.delta = static_cast<int8_t>(kind_);
  event.flag = flag_;
  event.frame = (static_cast<uint32_t>(saved_parent_) << 16) |
                static_cast<uint32_t>(id_);
  event.query = span_->trace_id;
  event.page = page_;
  event.a = (static_cast<uint64_t>(span_->track) << 32) |
            (payload_ & 0xffffffffull);
  event.b = begin_ns_;
  event.c = end_ns - begin_ns_;
  span_->parent = saved_parent_;
  span_->tracer->Emit(event);
  span_ = nullptr;
}

}  // namespace sdb::obs
