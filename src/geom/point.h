#ifndef SPATIALBUFFER_GEOM_POINT_H_
#define SPATIALBUFFER_GEOM_POINT_H_

namespace sdb::geom {

/// A point in the two-dimensional data space. The whole system works in an
/// abstract unit square [0,1]² by convention, but nothing in the geometry
/// layer depends on that.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace sdb::geom

#endif  // SPATIALBUFFER_GEOM_POINT_H_
