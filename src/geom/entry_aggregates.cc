#include "geom/entry_aggregates.h"

namespace sdb::geom {

EntryAggregates ComputeEntryAggregates(std::span<const Rect> entries) {
  EntryAggregates agg;
  for (const Rect& e : entries) {
    agg.mbr.Extend(e);
    agg.sum_entry_area += e.Area();
    agg.sum_entry_margin += e.Margin();
  }
  // The paper defines EO as the sum over ordered pairs divided by two, i.e.
  // each unordered pair counts once.
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      agg.entry_overlap += IntersectionArea(entries[i], entries[j]);
    }
  }
  return agg;
}

}  // namespace sdb::geom
