#include "geom/entry_aggregates.h"

#include <algorithm>

#include "geom/kernels/kernels.h"

namespace sdb::geom {

EntryAggregates ComputeEntryAggregatesSoA(const double* xmin,
                                          const double* ymin,
                                          const double* xmax,
                                          const double* ymax, size_t n) {
  EntryAggregates agg;
  // MBR: plain sequential min/max — identical for every dispatch level, and
  // identical to Rect::Extend over the same rects in the same order.
  for (size_t i = 0; i < n; ++i) {
    agg.mbr.xmin = std::min(agg.mbr.xmin, xmin[i]);
    agg.mbr.ymin = std::min(agg.mbr.ymin, ymin[i]);
    agg.mbr.xmax = std::max(agg.mbr.xmax, xmax[i]);
    agg.mbr.ymax = std::max(agg.mbr.ymax, ymax[i]);
  }
  const kernels::Ops& ops = kernels::ActiveOps();
  agg.sum_entry_area = ops.sum_areas(xmin, ymin, xmax, ymax, n);
  agg.sum_entry_margin = ops.sum_margins(xmin, ymin, xmax, ymax, n);
  // The paper defines EO as the sum over ordered pairs divided by two, i.e.
  // each unordered pair counts once — exactly the kernel's pair loop.
  agg.entry_overlap = ops.pairwise_overlap_sum(xmin, ymin, xmax, ymax, n);
  return agg;
}

EntryAggregates ComputeEntryAggregates(std::span<const Rect> entries) {
  thread_local kernels::SoaBuffer scratch;
  const size_t n = entries.size();
  scratch.Reserve(n);
  double* xmin = scratch.xmin();
  double* ymin = scratch.ymin();
  double* xmax = scratch.xmax();
  double* ymax = scratch.ymax();
  for (size_t i = 0; i < n; ++i) {
    xmin[i] = entries[i].xmin;
    ymin[i] = entries[i].ymin;
    xmax[i] = entries[i].xmax;
    ymax[i] = entries[i].ymax;
  }
  return ComputeEntryAggregatesSoA(xmin, ymin, xmax, ymax, n);
}

}  // namespace sdb::geom
