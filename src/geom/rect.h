#ifndef SPATIALBUFFER_GEOM_RECT_H_
#define SPATIALBUFFER_GEOM_RECT_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/point.h"

namespace sdb::geom {

/// Axis-aligned rectangle — the minimum bounding rectangle (MBR) used
/// throughout the R*-tree and the spatial replacement criteria.
///
/// A default-constructed Rect is *empty*: it contains nothing, extending any
/// rectangle by it is a no-op, and extending it by a point yields the
/// degenerate rectangle at that point. Empty rectangles are the identity of
/// `Extend`, which makes incremental MBR computation branch-free.
struct Rect {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  Rect() = default;
  Rect(double x0, double y0, double x1, double y1)
      : xmin(x0), ymin(y0), xmax(x1), ymax(y1) {}

  /// Degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  /// Rectangle of the given width/height centered at `c`, used for window
  /// queries.
  static Rect Centered(const Point& c, double width, double height) {
    return Rect(c.x - width / 2, c.y - height / 2, c.x + width / 2,
                c.y + height / 2);
  }

  /// True for the additive identity (default-constructed) state and for any
  /// inverted rectangle.
  bool IsEmpty() const { return xmin > xmax || ymin > ymax; }

  double width() const { return IsEmpty() ? 0.0 : xmax - xmin; }
  double height() const { return IsEmpty() ? 0.0 : ymax - ymin; }

  /// Area of the rectangle; 0 for empty and degenerate rectangles.
  double Area() const { return width() * height(); }

  /// Margin (half-perimeter: width + height), the R* criterion (O3).
  double Margin() const { return width() + height(); }

  Point Center() const {
    return Point{(xmin + xmax) / 2, (ymin + ymax) / 2};
  }

  /// True if the rectangles share at least one point (closed-set semantics:
  /// touching edges intersect).
  bool Intersects(const Rect& o) const {
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax &&
           o.ymin <= ymax;
  }

  bool Contains(const Point& p) const {
    return xmin <= p.x && p.x <= xmax && ymin <= p.y && p.y <= ymax;
  }

  /// True if `o` lies entirely inside (or on the boundary of) this rect.
  bool Contains(const Rect& o) const {
    return !o.IsEmpty() && xmin <= o.xmin && o.xmax <= xmax &&
           ymin <= o.ymin && o.ymax <= ymax;
  }

  /// Grows this rectangle to cover `o`. Extending by an empty rect is a
  /// no-op; extending an empty rect yields `o`.
  void Extend(const Rect& o) {
    xmin = std::min(xmin, o.xmin);
    ymin = std::min(ymin, o.ymin);
    xmax = std::max(xmax, o.xmax);
    ymax = std::max(ymax, o.ymax);
  }

  void Extend(const Point& p) { Extend(FromPoint(p)); }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.xmin == b.xmin && a.ymin == b.ymin && a.xmax == b.xmax &&
           a.ymax == b.ymax;
  }
};

/// Smallest rectangle covering both arguments.
Rect Union(const Rect& a, const Rect& b);

/// Common region of `a` and `b`; empty if they do not intersect.
Rect Intersection(const Rect& a, const Rect& b);

/// Area of the intersection; 0 if disjoint. This is the pairwise term of the
/// EO replacement criterion and the R* split overlap measure.
double IntersectionArea(const Rect& a, const Rect& b);

/// How much `base` must grow (in area) to accommodate `add` — the R*
/// ChooseSubtree cost.
double AreaEnlargement(const Rect& base, const Rect& add);

/// Squared Euclidean distance between two points.
double SquaredDistance(const Point& a, const Point& b);

/// Debug representation "[xmin,ymin..xmax,ymax]".
std::string ToString(const Rect& r);

}  // namespace sdb::geom

#endif  // SPATIALBUFFER_GEOM_RECT_H_
