#include "geom/rect.h"

#include <algorithm>
#include <cstdio>

namespace sdb::geom {

Rect Union(const Rect& a, const Rect& b) {
  Rect r = a;
  r.Extend(b);
  return r;
}

Rect Intersection(const Rect& a, const Rect& b) {
  Rect r(std::max(a.xmin, b.xmin), std::max(a.ymin, b.ymin),
         std::min(a.xmax, b.xmax), std::min(a.ymax, b.ymax));
  if (r.IsEmpty()) return Rect();
  return r;
}

double IntersectionArea(const Rect& a, const Rect& b) {
  const double w =
      std::min(a.xmax, b.xmax) - std::max(a.xmin, b.xmin);
  if (w <= 0.0) return 0.0;
  const double h =
      std::min(a.ymax, b.ymax) - std::max(a.ymin, b.ymin);
  if (h <= 0.0) return 0.0;
  return w * h;
}

double AreaEnlargement(const Rect& base, const Rect& add) {
  return Union(base, add).Area() - base.Area();
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::string ToString(const Rect& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g,%g..%g,%g]", r.xmin, r.ymin, r.xmax,
                r.ymax);
  return buf;
}

}  // namespace sdb::geom
