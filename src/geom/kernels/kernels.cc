// Runtime dispatch: probe the CPU once at first use (thread-safe via the
// function-local static), clamp by what this binary was compiled with, and
// honor the SDB_KERNELS environment override for A/B runs and CI
// determinism checks. The override can only *lower* the tier — asking for a
// tier the hardware or build lacks falls back to the best available one.

#include "geom/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "geom/kernels/kernels_internal.h"

namespace sdb::geom::kernels {

namespace {

bool CpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CompiledAvx2() {
#if defined(SDB_KERNELS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool CompiledSse2() {
#if defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

Level DetectBest() {
  if (CompiledAvx2() && CpuHasAvx2()) return Level::kAvx2;
  if (CompiledSse2()) return Level::kSse2;
  return Level::kScalar;
}

Level InitialLevel() {
  const Level best = DetectBest();
  const char* env = std::getenv("SDB_KERNELS");
  if (env == nullptr || env[0] == '\0') return best;
  const Level requested = ParseLevelName(env, best);
  if (!LevelAvailable(requested)) {
    std::fprintf(stderr,
                 "warning: SDB_KERNELS=%s not available on this "
                 "machine/build, using %s\n",
                 env, std::string(LevelName(best)).c_str());
    return best;
  }
  return requested;
}

Level& ActiveLevelRef() {
  static Level level = InitialLevel();
  return level;
}

}  // namespace

Level ActiveLevel() { return ActiveLevelRef(); }

const Ops& OpsFor(Level level) {
  switch (level) {
    case Level::kAvx2:
      if (LevelAvailable(Level::kAvx2)) return internal::kAvx2Ops;
      break;
    case Level::kSse2:
      if (LevelAvailable(Level::kSse2)) return internal::kSse2Ops;
      break;
    case Level::kScalar:
      break;
  }
  return internal::kScalarOps;
}

const Ops& ActiveOps() { return OpsFor(ActiveLevel()); }

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
      return CompiledSse2();
    case Level::kAvx2:
      return CompiledAvx2() && CpuHasAvx2();
  }
  return false;
}

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level ParseLevelName(std::string_view name, Level fallback) {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  return fallback;
}

void ForceLevel(Level level) {
  ActiveLevelRef() = LevelAvailable(level) ? level : DetectBest();
}

}  // namespace sdb::geom::kernels
