#ifndef SPATIALBUFFER_GEOM_KERNELS_KERNELS_H_
#define SPATIALBUFFER_GEOM_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "geom/rect.h"

namespace sdb::geom::kernels {

/// Instruction-set tiers of the batch geometry kernels, ordered by
/// preference. One tier is selected at startup (cpuid probe, overridable via
/// SDB_KERNELS=scalar|sse2|avx2) and used for every kernel call thereafter.
///
/// Every tier produces BIT-IDENTICAL results: the scalar reference
/// implementation is the single source of truth, and it is defined in the
/// same canonical accumulation order the vector units use (8 strided
/// partial sums s0..s7, combined as u_k = s_k + s_{k+4} then
/// (u0+u2)+(u1+u3), sequential tail) — so query hit counts, page aggregates
/// and every BENCH_*.json row are independent of the dispatch level.
enum class Level : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Function table of one dispatch tier. All kernels operate on SoA
/// coordinate arrays (xmin[], ymin[], xmax[], ymax[] of n entry MBRs) — the
/// layout GatherCoords/SoaBuffer produce from on-page entry records.
struct Ops {
  /// Writes out[i] = 1 if `query` intersects entry i (closed-set semantics,
  /// exactly geom::Rect::Intersects), else 0. Returns the hit count.
  size_t (*intersect_mask)(const Rect& query, const double* xmin,
                           const double* ymin, const double* xmax,
                           const double* ymax, size_t n, uint8_t* out);
  /// Σ area of the entry MBRs (empty/inverted rects count as 0, exactly
  /// geom::Rect::Area) in the canonical accumulation order.
  double (*sum_areas)(const double* xmin, const double* ymin,
                      const double* xmax, const double* ymax, size_t n);
  /// Σ margin (width + height) of the entry MBRs, canonical order.
  double (*sum_margins)(const double* xmin, const double* ymin,
                        const double* xmax, const double* ymax, size_t n);
  /// Σ over unordered pairs {i, j} of area(entry_i ∩ entry_j) — the O(n²)
  /// EO criterion term. Canonical order: for each i ascending, the inner
  /// j-sum (j > i) is a canonical strided sum added to the running total.
  double (*pairwise_overlap_sum)(const double* xmin, const double* ymin,
                                 const double* xmax, const double* ymax,
                                 size_t n);
};

/// Reusable SoA scratch for deinterleaved entry coordinates. Reserve() grows
/// but never shrinks, so one buffer threaded through a traversal performs no
/// per-node allocation in steady state.
class SoaBuffer {
 public:
  /// Ensures capacity for `n` entries; invalidates previous pointers when it
  /// grows.
  void Reserve(size_t n) {
    if (n <= cap_) return;
    // Round up generously so a traversal settles after one growth.
    size_t cap = cap_ == 0 ? 128 : cap_;
    while (cap < n) cap *= 2;
    storage_.assign(4 * cap, 0.0);
    cap_ = cap;
  }

  size_t capacity() const { return cap_; }

  double* xmin() { return storage_.data(); }
  double* ymin() { return storage_.data() + cap_; }
  double* xmax() { return storage_.data() + 2 * cap_; }
  double* ymax() { return storage_.data() + 3 * cap_; }
  const double* xmin() const { return storage_.data(); }
  const double* ymin() const { return storage_.data() + cap_; }
  const double* xmax() const { return storage_.data() + 2 * cap_; }
  const double* ymax() const { return storage_.data() + 3 * cap_; }

 private:
  std::vector<double> storage_;
  size_t cap_ = 0;
};

/// The tier selected for this process: the best level the CPU supports,
/// clamped by the SDB_KERNELS environment override (read once, at the first
/// call). Thread-safe.
Level ActiveLevel();

/// Function table of the active tier.
const Ops& ActiveOps();

/// Function table of an explicit tier (for A/B benches and the property
/// tests). Asking for an unavailable tier returns the scalar table.
const Ops& OpsFor(Level level);

/// True if `level` is compiled in and supported by this CPU. kScalar is
/// always available.
bool LevelAvailable(Level level);

/// "scalar", "sse2", "avx2".
std::string_view LevelName(Level level);

/// Parses an SDB_KERNELS-style name; returns `fallback` for unknown names.
Level ParseLevelName(std::string_view name, Level fallback);

/// Overrides the active tier for the rest of the process (bench/test A/B
/// only — not thread-safe against concurrent kernel calls).
void ForceLevel(Level level);

// --- convenience wrappers over ActiveOps() --------------------------------

inline size_t IntersectMask(const Rect& query, const double* xmin,
                            const double* ymin, const double* xmax,
                            const double* ymax, size_t n, uint8_t* out) {
  return ActiveOps().intersect_mask(query, xmin, ymin, xmax, ymax, n, out);
}

inline double SumAreas(const double* xmin, const double* ymin,
                       const double* xmax, const double* ymax, size_t n) {
  return ActiveOps().sum_areas(xmin, ymin, xmax, ymax, n);
}

inline double SumMargins(const double* xmin, const double* ymin,
                         const double* xmax, const double* ymax, size_t n) {
  return ActiveOps().sum_margins(xmin, ymin, xmax, ymax, n);
}

inline double PairwiseOverlapSum(const double* xmin, const double* ymin,
                                 const double* xmax, const double* ymax,
                                 size_t n) {
  return ActiveOps().pairwise_overlap_sum(xmin, ymin, xmax, ymax, n);
}

}  // namespace sdb::geom::kernels

#endif  // SPATIALBUFFER_GEOM_KERNELS_KERNELS_H_
