// AVX2 tier: 4×f64 registers, one entry per lane, two independent
// accumulators per sum (elements i..i+3 and i+4..i+7) so the add-latency
// chain is split in half. Lane k of acc_a holds the scalar reference's
// strided partial s_k and lane k of acc_b holds s_{k+4}; acc_a + acc_b
// yields u_k = s_k + s_{k+4} and the 128-bit reduction reproduces the
// (u0+u2) + (u1+u3) combine — so results are bit-identical to the scalar
// tier's canonical 8-stride order.
//
// Deliberately no FMA: a fused multiply-add rounds once where the scalar
// reference rounds twice, which would break the bit-identity contract (the
// whole library is also built with -ffp-contract=off for the same reason).
//
// Operand-order discipline for min/max: std::min(x, y) keeps x when the
// comparison is false (including NaN), while VMINPD keeps the SECOND
// operand; so std::min(x, y) compiles to _mm256_min_pd(y, x), and likewise
// for max.

#include "geom/kernels/kernels_internal.h"

#if defined(SDB_KERNELS_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace sdb::geom::kernels::internal {

namespace {

/// (u0+u2) + (u1+u3) for acc = (u0, u1, u2, u3) — identical to the scalar
/// reference's final combine.
inline double Reduce(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);      // (u0, u1)
  const __m128d hi = _mm256_extractf128_pd(acc, 1);    // (u2, u3)
  const __m128d s = _mm_add_pd(lo, hi);                // (u0+u2, u1+u3)
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Width/height of 4 entries with Rect::width()/height() semantics.
inline void LoadExtents(const double* xmin, const double* ymin,
                        const double* xmax, const double* ymax, size_t i,
                        __m256d* w, __m256d* h) {
  const __m256d x0 = _mm256_loadu_pd(xmin + i);
  const __m256d y0 = _mm256_loadu_pd(ymin + i);
  const __m256d x1 = _mm256_loadu_pd(xmax + i);
  const __m256d y1 = _mm256_loadu_pd(ymax + i);
  const __m256d empty = _mm256_or_pd(_mm256_cmp_pd(x0, x1, _CMP_GT_OQ),
                                     _mm256_cmp_pd(y0, y1, _CMP_GT_OQ));
  *w = _mm256_andnot_pd(empty, _mm256_sub_pd(x1, x0));
  *h = _mm256_andnot_pd(empty, _mm256_sub_pd(y1, y0));
}

double SumAreasAvx2(const double* xmin, const double* ymin,
                    const double* xmax, const double* ymax, size_t n) {
  __m256d acc_a = _mm256_setzero_pd();  // partials s0..s3
  __m256d acc_b = _mm256_setzero_pd();  // partials s4..s7
  const size_t n8 = n & ~static_cast<size_t>(7);
  __m256d w, h;
  for (size_t i = 0; i < n8; i += 8) {
    LoadExtents(xmin, ymin, xmax, ymax, i, &w, &h);
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 4, &w, &h);
    acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(w, h));
  }
  double total = Reduce(_mm256_add_pd(acc_a, acc_b));
  for (size_t i = n8; i < n; ++i) {
    total += EntryArea(xmin[i], ymin[i], xmax[i], ymax[i]);
  }
  return total;
}

double SumMarginsAvx2(const double* xmin, const double* ymin,
                      const double* xmax, const double* ymax, size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const size_t n8 = n & ~static_cast<size_t>(7);
  __m256d w, h;
  for (size_t i = 0; i < n8; i += 8) {
    LoadExtents(xmin, ymin, xmax, ymax, i, &w, &h);
    acc_a = _mm256_add_pd(acc_a, _mm256_add_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 4, &w, &h);
    acc_b = _mm256_add_pd(acc_b, _mm256_add_pd(w, h));
  }
  double total = Reduce(_mm256_add_pd(acc_a, acc_b));
  for (size_t i = n8; i < n; ++i) {
    total += EntryMargin(xmin[i], ymin[i], xmax[i], ymax[i]);
  }
  return total;
}

/// Intersection bits of the broadcast query against entries (i .. i+3).
inline int MaskBits4(__m256d qx0, __m256d qy0, __m256d qx1, __m256d qy1,
                     const double* xmin, const double* ymin,
                     const double* xmax, const double* ymax, size_t i) {
  const __m256d m = _mm256_and_pd(
      _mm256_and_pd(
          _mm256_cmp_pd(qx0, _mm256_loadu_pd(xmax + i), _CMP_LE_OQ),
          _mm256_cmp_pd(_mm256_loadu_pd(xmin + i), qx1, _CMP_LE_OQ)),
      _mm256_and_pd(
          _mm256_cmp_pd(qy0, _mm256_loadu_pd(ymax + i), _CMP_LE_OQ),
          _mm256_cmp_pd(_mm256_loadu_pd(ymin + i), qy1, _CMP_LE_OQ)));
  return _mm256_movemask_pd(m);
}

/// Spreads the low 8 bits into 8 bytes of 0/1: byte k = (bits >> k) & 1.
/// Replicate the bits into every byte, select bit k in byte k, then turn
/// "nonzero byte" into 0x01 via the +0x7f carry into bit 7 (no cross-byte
/// carries: every per-byte value stays <= 0xff).
inline uint64_t SpreadMaskBytes(int bits) {
  const uint64_t rep =
      static_cast<uint64_t>(bits & 0xff) * 0x0101010101010101ULL;
  const uint64_t sel = rep & 0x8040201008040201ULL;
  return ((sel + 0x7f7f7f7f7f7f7f7fULL) >> 7) & 0x0101010101010101ULL;
}

size_t IntersectMaskAvx2(const Rect& query, const double* xmin,
                         const double* ymin, const double* xmax,
                         const double* ymax, size_t n, uint8_t* out) {
  const __m256d qx0 = _mm256_set1_pd(query.xmin);
  const __m256d qy0 = _mm256_set1_pd(query.ymin);
  const __m256d qx1 = _mm256_set1_pd(query.xmax);
  const __m256d qy1 = _mm256_set1_pd(query.ymax);
  size_t hits = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    const int bits =
        MaskBits4(qx0, qy0, qx1, qy1, xmin, ymin, xmax, ymax, i) |
        (MaskBits4(qx0, qy0, qx1, qy1, xmin, ymin, xmax, ymax, i + 4) << 4);
    const uint64_t bytes = SpreadMaskBytes(bits);
    std::memcpy(out + i, &bytes, sizeof(bytes));
    hits += static_cast<size_t>(__builtin_popcount(bits));
  }
  size_t i = n8;
  if (i + 4 <= n) {
    const int bits = MaskBits4(qx0, qy0, qx1, qy1, xmin, ymin, xmax, ymax, i);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
    hits += static_cast<size_t>(__builtin_popcount(bits));
    i += 4;
  }
  for (; i < n; ++i) {
    const uint8_t hit =
        Intersects(query, xmin[i], ymin[i], xmax[i], ymax[i]) ? 1 : 0;
    out[i] = hit;
    hits += hit;
  }
  return hits;
}

/// Overlap products of the broadcast rect against entries (j .. j+3).
inline __m256d OverlapProducts(__m256d ax0, __m256d ay0, __m256d ax1,
                               __m256d ay1, const double* xmin,
                               const double* ymin, const double* xmax,
                               const double* ymax, size_t j) {
  const __m256d w =
      _mm256_sub_pd(_mm256_min_pd(_mm256_loadu_pd(xmax + j), ax1),
                    _mm256_max_pd(_mm256_loadu_pd(xmin + j), ax0));
  const __m256d h =
      _mm256_sub_pd(_mm256_min_pd(_mm256_loadu_pd(ymax + j), ay1),
                    _mm256_max_pd(_mm256_loadu_pd(ymin + j), ay0));
  const __m256d zero = _mm256_setzero_pd();
  const __m256d none = _mm256_or_pd(_mm256_cmp_pd(w, zero, _CMP_LE_OQ),
                                    _mm256_cmp_pd(h, zero, _CMP_LE_OQ));
  return _mm256_andnot_pd(none, _mm256_mul_pd(w, h));
}

double PairwiseOverlapSumAvx2(const double* xmin, const double* ymin,
                              const double* xmax, const double* ymax,
                              size_t n) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const __m256d ax0 = _mm256_set1_pd(xmin[i]);
    const __m256d ay0 = _mm256_set1_pd(ymin[i]);
    const __m256d ax1 = _mm256_set1_pd(xmax[i]);
    const __m256d ay1 = _mm256_set1_pd(ymax[i]);
    const size_t base = i + 1;
    const size_t m = n - base;
    const size_t m8 = m & ~static_cast<size_t>(7);
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    for (size_t t = 0; t < m8; t += 8) {
      acc_a = _mm256_add_pd(acc_a, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                   ymin, xmax, ymax,
                                                   base + t));
      acc_b = _mm256_add_pd(acc_b, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                   ymin, xmax, ymax,
                                                   base + t + 4));
    }
    double inner = Reduce(_mm256_add_pd(acc_a, acc_b));
    size_t t = m8;
    if (t + 4 <= m) {
      // Tail block of 4: each lane's product rounds exactly as the scalar
      // OverlapArea, and adding the lanes in order reproduces the scalar
      // reference's sequential tail.
      const __m256d p = OverlapProducts(ax0, ay0, ax1, ay1, xmin, ymin,
                                        xmax, ymax, base + t);
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, p);
      inner += lanes[0];
      inner += lanes[1];
      inner += lanes[2];
      inner += lanes[3];
      t += 4;
    }
    if (t < m) {
      // Last 1..3 pairs: masked loads keep out-of-range lanes unread, and
      // only the active lanes' products — each rounded exactly as the
      // scalar OverlapArea — are added, in lane order.
      const size_t rem = m - t;
      const size_t j = base + t;
      const __m256i sel = _mm256_set_epi64x(0, rem > 2 ? -1LL : 0,
                                            rem > 1 ? -1LL : 0, -1LL);
      const __m256d w = _mm256_sub_pd(
          _mm256_min_pd(_mm256_maskload_pd(xmax + j, sel), ax1),
          _mm256_max_pd(_mm256_maskload_pd(xmin + j, sel), ax0));
      const __m256d h = _mm256_sub_pd(
          _mm256_min_pd(_mm256_maskload_pd(ymax + j, sel), ay1),
          _mm256_max_pd(_mm256_maskload_pd(ymin + j, sel), ay0));
      const __m256d zero = _mm256_setzero_pd();
      const __m256d none = _mm256_or_pd(_mm256_cmp_pd(w, zero, _CMP_LE_OQ),
                                        _mm256_cmp_pd(h, zero, _CMP_LE_OQ));
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, _mm256_andnot_pd(none, _mm256_mul_pd(w, h)));
      for (size_t k = 0; k < rem; ++k) inner += lanes[k];
    }
    total += inner;
  }
  return total;
}

}  // namespace

const Ops kAvx2Ops = {
    IntersectMaskAvx2,
    SumAreasAvx2,
    SumMarginsAvx2,
    PairwiseOverlapSumAvx2,
};

}  // namespace sdb::geom::kernels::internal

#else  // AVX2 not compiled in

namespace sdb::geom::kernels::internal {
// Compiler/arch without AVX2 support: the tier aliases the scalar reference
// and LevelAvailable(kAvx2) reports false.
const Ops kAvx2Ops = kScalarOps;
}  // namespace sdb::geom::kernels::internal

#endif
