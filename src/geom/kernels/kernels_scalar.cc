// Scalar reference implementation — the single source of truth for all
// kernel semantics. The vector tiers (kernels_sse2.cc, kernels_avx2.cc)
// must reproduce these results bit-for-bit; the property suite
// (tests/geom_kernels_test.cc) enforces it over adversarial rect sets.

#include "geom/kernels/kernels_internal.h"

namespace sdb::geom::kernels::internal {

namespace {

size_t IntersectMaskScalar(const Rect& query, const double* xmin,
                           const double* ymin, const double* xmax,
                           const double* ymax, size_t n, uint8_t* out) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t hit =
        Intersects(query, xmin[i], ymin[i], xmax[i], ymax[i]) ? 1 : 0;
    out[i] = hit;
    hits += hit;
  }
  return hits;
}

double SumAreasScalar(const double* xmin, const double* ymin,
                      const double* xmax, const double* ymax, size_t n) {
  return StridedSum(
      n, [&](size_t i) { return EntryArea(xmin[i], ymin[i], xmax[i], ymax[i]); });
}

double SumMarginsScalar(const double* xmin, const double* ymin,
                        const double* xmax, const double* ymax, size_t n) {
  return StridedSum(n, [&](size_t i) {
    return EntryMargin(xmin[i], ymin[i], xmax[i], ymax[i]);
  });
}

double PairwiseOverlapSumScalar(const double* xmin, const double* ymin,
                                const double* xmax, const double* ymax,
                                size_t n) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const size_t base = i + 1;
    total += StridedSum(n - base, [&](size_t t) {
      const size_t j = base + t;
      return OverlapArea(xmin[i], ymin[i], xmax[i], ymax[i], xmin[j],
                         ymin[j], xmax[j], ymax[j]);
    });
  }
  return total;
}

}  // namespace

const Ops kScalarOps = {
    IntersectMaskScalar,
    SumAreasScalar,
    SumMarginsScalar,
    PairwiseOverlapSumScalar,
};

}  // namespace sdb::geom::kernels::internal
