// SSE2 tier: 2×f64 registers, processing 8 entries per iteration with four
// accumulators so the lane assignment — and therefore every rounding step —
// matches the canonical 8-stride order of the scalar reference exactly:
// acc_a..acc_d hold partials (s0,s1)/(s2,s3)/(s4,s5)/(s6,s7), a+c and b+d
// form (u0,u1)/(u2,u3), and the final reduce is (u0+u2) + (u1+u3).
//
// Operand-order discipline for min/max: std::min(x, y) keeps x when the
// comparison is false (including NaN), while MINPD keeps the SECOND operand;
// so std::min(x, y) compiles to _mm_min_pd(y, x), and likewise for max.

#include "geom/kernels/kernels_internal.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace sdb::geom::kernels::internal {

namespace {

/// (u0+u2) + (u1+u3) given (u0, u1) and (u2, u3) — identical to the scalar
/// reference's final combine.
inline double Reduce(__m128d u01, __m128d u23) {
  const __m128d s = _mm_add_pd(u01, u23);  // (u0+u2, u1+u3)
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Width/height of 2 entries with Rect::width()/height() semantics: 0 where
/// the rect is inverted on either axis, raw difference (NaN-propagating)
/// otherwise.
inline void LoadExtents(const double* xmin, const double* ymin,
                        const double* xmax, const double* ymax, size_t i,
                        __m128d* w, __m128d* h) {
  const __m128d x0 = _mm_loadu_pd(xmin + i);
  const __m128d y0 = _mm_loadu_pd(ymin + i);
  const __m128d x1 = _mm_loadu_pd(xmax + i);
  const __m128d y1 = _mm_loadu_pd(ymax + i);
  const __m128d empty =
      _mm_or_pd(_mm_cmpgt_pd(x0, x1), _mm_cmpgt_pd(y0, y1));
  *w = _mm_andnot_pd(empty, _mm_sub_pd(x1, x0));
  *h = _mm_andnot_pd(empty, _mm_sub_pd(y1, y0));
}

double SumAreasSse2(const double* xmin, const double* ymin,
                    const double* xmax, const double* ymax, size_t n) {
  __m128d acc_a = _mm_setzero_pd();  // partials (s0, s1)
  __m128d acc_b = _mm_setzero_pd();  // partials (s2, s3)
  __m128d acc_c = _mm_setzero_pd();  // partials (s4, s5)
  __m128d acc_d = _mm_setzero_pd();  // partials (s6, s7)
  const size_t n8 = n & ~static_cast<size_t>(7);
  __m128d w, h;
  for (size_t i = 0; i < n8; i += 8) {
    LoadExtents(xmin, ymin, xmax, ymax, i, &w, &h);
    acc_a = _mm_add_pd(acc_a, _mm_mul_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 2, &w, &h);
    acc_b = _mm_add_pd(acc_b, _mm_mul_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 4, &w, &h);
    acc_c = _mm_add_pd(acc_c, _mm_mul_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 6, &w, &h);
    acc_d = _mm_add_pd(acc_d, _mm_mul_pd(w, h));
  }
  double total =
      Reduce(_mm_add_pd(acc_a, acc_c), _mm_add_pd(acc_b, acc_d));
  for (size_t i = n8; i < n; ++i) {
    total += EntryArea(xmin[i], ymin[i], xmax[i], ymax[i]);
  }
  return total;
}

double SumMarginsSse2(const double* xmin, const double* ymin,
                      const double* xmax, const double* ymax, size_t n) {
  __m128d acc_a = _mm_setzero_pd();
  __m128d acc_b = _mm_setzero_pd();
  __m128d acc_c = _mm_setzero_pd();
  __m128d acc_d = _mm_setzero_pd();
  const size_t n8 = n & ~static_cast<size_t>(7);
  __m128d w, h;
  for (size_t i = 0; i < n8; i += 8) {
    LoadExtents(xmin, ymin, xmax, ymax, i, &w, &h);
    acc_a = _mm_add_pd(acc_a, _mm_add_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 2, &w, &h);
    acc_b = _mm_add_pd(acc_b, _mm_add_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 4, &w, &h);
    acc_c = _mm_add_pd(acc_c, _mm_add_pd(w, h));
    LoadExtents(xmin, ymin, xmax, ymax, i + 6, &w, &h);
    acc_d = _mm_add_pd(acc_d, _mm_add_pd(w, h));
  }
  double total =
      Reduce(_mm_add_pd(acc_a, acc_c), _mm_add_pd(acc_b, acc_d));
  for (size_t i = n8; i < n; ++i) {
    total += EntryMargin(xmin[i], ymin[i], xmax[i], ymax[i]);
  }
  return total;
}

size_t IntersectMaskSse2(const Rect& query, const double* xmin,
                         const double* ymin, const double* xmax,
                         const double* ymax, size_t n, uint8_t* out) {
  const __m128d qx0 = _mm_set1_pd(query.xmin);
  const __m128d qy0 = _mm_set1_pd(query.ymin);
  const __m128d qx1 = _mm_set1_pd(query.xmax);
  const __m128d qy1 = _mm_set1_pd(query.ymax);
  size_t hits = 0;
  const size_t n2 = n & ~static_cast<size_t>(1);
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d m = _mm_and_pd(
        _mm_and_pd(_mm_cmple_pd(qx0, _mm_loadu_pd(xmax + i)),
                   _mm_cmple_pd(_mm_loadu_pd(xmin + i), qx1)),
        _mm_and_pd(_mm_cmple_pd(qy0, _mm_loadu_pd(ymax + i)),
                   _mm_cmple_pd(_mm_loadu_pd(ymin + i), qy1)));
    const int bits = _mm_movemask_pd(m);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    hits += static_cast<size_t>(__builtin_popcount(bits));
  }
  for (size_t i = n2; i < n; ++i) {
    const uint8_t hit =
        Intersects(query, xmin[i], ymin[i], xmax[i], ymax[i]) ? 1 : 0;
    out[i] = hit;
    hits += hit;
  }
  return hits;
}

/// Overlap extents of the broadcast rect `a` against entries (j, j+1):
/// w = min(axmax, xmax[j]) − max(axmin, xmin[j]) etc., with the MINPD
/// operand swap described at the top of the file.
inline __m128d OverlapProducts(__m128d ax0, __m128d ay0, __m128d ax1,
                               __m128d ay1, const double* xmin,
                               const double* ymin, const double* xmax,
                               const double* ymax, size_t j) {
  const __m128d w =
      _mm_sub_pd(_mm_min_pd(_mm_loadu_pd(xmax + j), ax1),
                 _mm_max_pd(_mm_loadu_pd(xmin + j), ax0));
  const __m128d h =
      _mm_sub_pd(_mm_min_pd(_mm_loadu_pd(ymax + j), ay1),
                 _mm_max_pd(_mm_loadu_pd(ymin + j), ay0));
  const __m128d zero = _mm_setzero_pd();
  const __m128d none =
      _mm_or_pd(_mm_cmple_pd(w, zero), _mm_cmple_pd(h, zero));
  return _mm_andnot_pd(none, _mm_mul_pd(w, h));
}

double PairwiseOverlapSumSse2(const double* xmin, const double* ymin,
                              const double* xmax, const double* ymax,
                              size_t n) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const __m128d ax0 = _mm_set1_pd(xmin[i]);
    const __m128d ay0 = _mm_set1_pd(ymin[i]);
    const __m128d ax1 = _mm_set1_pd(xmax[i]);
    const __m128d ay1 = _mm_set1_pd(ymax[i]);
    const size_t base = i + 1;
    const size_t m = n - base;
    const size_t m8 = m & ~static_cast<size_t>(7);
    __m128d acc_a = _mm_setzero_pd();
    __m128d acc_b = _mm_setzero_pd();
    __m128d acc_c = _mm_setzero_pd();
    __m128d acc_d = _mm_setzero_pd();
    for (size_t t = 0; t < m8; t += 8) {
      acc_a = _mm_add_pd(acc_a, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                ymin, xmax, ymax, base + t));
      acc_b = _mm_add_pd(acc_b, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                ymin, xmax, ymax,
                                                base + t + 2));
      acc_c = _mm_add_pd(acc_c, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                ymin, xmax, ymax,
                                                base + t + 4));
      acc_d = _mm_add_pd(acc_d, OverlapProducts(ax0, ay0, ax1, ay1, xmin,
                                                ymin, xmax, ymax,
                                                base + t + 6));
    }
    double inner =
        Reduce(_mm_add_pd(acc_a, acc_c), _mm_add_pd(acc_b, acc_d));
    for (size_t t = m8; t < m; ++t) {
      const size_t j = base + t;
      inner += OverlapArea(xmin[i], ymin[i], xmax[i], ymax[i], xmin[j],
                           ymin[j], xmax[j], ymax[j]);
    }
    total += inner;
  }
  return total;
}

}  // namespace

const Ops kSse2Ops = {
    IntersectMaskSse2,
    SumAreasSse2,
    SumMarginsSse2,
    PairwiseOverlapSumSse2,
};

}  // namespace sdb::geom::kernels::internal

#else  // !defined(__SSE2__)

namespace sdb::geom::kernels::internal {
// Non-x86 (or SSE2-less) build: the tier aliases the scalar reference and
// LevelAvailable(kSse2) reports false.
const Ops kSse2Ops = kScalarOps;
}  // namespace sdb::geom::kernels::internal

#endif
