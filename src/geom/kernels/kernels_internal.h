#ifndef SPATIALBUFFER_GEOM_KERNELS_KERNELS_INTERNAL_H_
#define SPATIALBUFFER_GEOM_KERNELS_KERNELS_INTERNAL_H_

#include <algorithm>
#include <cstddef>

#include "geom/kernels/kernels.h"

// Shared between the per-tier translation units. The scalar element
// semantics below are the reference every vector tier must reproduce
// bit-for-bit, including the NaN/±0 behavior of geom::Rect (empty rects use
// ±inf coordinates, so inf−inf NaNs are reachable inputs).

namespace sdb::geom::kernels::internal {

/// Per-tier implementation tables (kScalarOps always real; the SSE2/AVX2
/// tables alias the scalar one when the tier is not compiled in).
extern const Ops kScalarOps;
extern const Ops kSse2Ops;
extern const Ops kAvx2Ops;

/// Element semantics of geom::Rect::Area(): empty (inverted on either axis)
/// rects have zero width AND height; NaN coordinates propagate.
inline double EntryArea(double xmin, double ymin, double xmax, double ymax) {
  const bool empty = xmin > xmax || ymin > ymax;
  const double w = empty ? 0.0 : xmax - xmin;
  const double h = empty ? 0.0 : ymax - ymin;
  return w * h;
}

/// Element semantics of geom::Rect::Margin().
inline double EntryMargin(double xmin, double ymin, double xmax,
                          double ymax) {
  const bool empty = xmin > xmax || ymin > ymax;
  const double w = empty ? 0.0 : xmax - xmin;
  const double h = empty ? 0.0 : ymax - ymin;
  return w + h;
}

/// Element semantics of geom::IntersectionArea(a, b): exact 0.0 when either
/// extent is non-positive, w·h otherwise (NaN extents fall through to the
/// product, matching the Rect code path).
inline double OverlapArea(double axmin, double aymin, double axmax,
                          double aymax, double bxmin, double bymin,
                          double bxmax, double bymax) {
  const double w = std::min(axmax, bxmax) - std::max(axmin, bxmin);
  const double h = std::min(aymax, bymax) - std::max(aymin, bymin);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

/// Element semantics of query.Intersects(entry) (closed-set: touching edges
/// intersect; any NaN coordinate compares false, i.e. no intersection).
inline bool Intersects(const Rect& q, double xmin, double ymin, double xmax,
                       double ymax) {
  return q.xmin <= xmax && xmin <= q.xmax && q.ymin <= ymax && ymin <= q.ymax;
}

/// THE canonical accumulation order, shared by every tier:
///   - partial sum s_k (k = 0..7) accumulates elements i with i % 8 == k
///     over the largest multiple-of-8 prefix,
///   - partials combine as u_k = s_k + s_{k+4} (a 4×f64 vector add of two
///     interleaved accumulators), then (u0 + u2) + (u1 + u3) — exactly the
///     two-step 128-bit reduction of one 4×f64 register,
///   - tail elements are then added sequentially.
/// Eight strides instead of four so the AVX2 tier can run two independent
/// accumulators (hiding the 4-cycle add latency) and still match this order
/// bit-for-bit. `element(i)` must be pure.
template <typename F>
inline double StridedSum(size_t n, F&& element) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    s0 += element(i);
    s1 += element(i + 1);
    s2 += element(i + 2);
    s3 += element(i + 3);
    s4 += element(i + 4);
    s5 += element(i + 5);
    s6 += element(i + 6);
    s7 += element(i + 7);
  }
  const double u0 = s0 + s4, u1 = s1 + s5, u2 = s2 + s6, u3 = s3 + s7;
  double total = (u0 + u2) + (u1 + u3);
  for (size_t i = n8; i < n; ++i) total += element(i);
  return total;
}

}  // namespace sdb::geom::kernels::internal

#endif  // SPATIALBUFFER_GEOM_KERNELS_KERNELS_INTERNAL_H_
