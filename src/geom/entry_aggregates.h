#ifndef SPATIALBUFFER_GEOM_ENTRY_AGGREGATES_H_
#define SPATIALBUFFER_GEOM_ENTRY_AGGREGATES_H_

#include <cstddef>
#include <span>

#include "geom/rect.h"

namespace sdb::geom {

/// The aggregate spatial measures of one page's entry set, as used by the
/// five spatial replacement criteria of the paper (Sec. 2.3):
///
///   A  = area(mbr)              — spatialCrit_A
///   EA = Σ area(entry MBR)      — spatialCrit_EA
///   M  = margin(mbr)            — spatialCrit_M
///   EM = Σ margin(entry MBR)    — spatialCrit_EM
///   EO = Σ_{e≠f} area(e ∩ f)/2  — spatialCrit_EO
///
/// Every page header stores these values so a replacement policy never has
/// to re-parse page payloads.
struct EntryAggregates {
  Rect mbr;                      ///< MBR of all entries.
  double sum_entry_area = 0.0;   ///< Σ area of entry MBRs (EA).
  double sum_entry_margin = 0.0; ///< Σ margin of entry MBRs (EM).
  double entry_overlap = 0.0;    ///< total pairwise overlap (EO).
};

/// Computes all aggregates over the entry MBRs of a page (O(n²) for the
/// pairwise overlap term, with n bounded by the page fanout) through the
/// dispatched batch kernels (geom/kernels): the AoS span is deinterleaved
/// into a reused SoA scratch and summed in the kernels' canonical order, so
/// the result is bit-identical to ComputeEntryAggregatesSoA on the same
/// rectangles at every dispatch level.
EntryAggregates ComputeEntryAggregates(std::span<const Rect> entries);

/// Same aggregates over already-deinterleaved SoA coordinate arrays (the
/// zero-copy path NodeView::RefreshAggregates uses after GatherCoords).
EntryAggregates ComputeEntryAggregatesSoA(const double* xmin,
                                          const double* ymin,
                                          const double* xmax,
                                          const double* ymax, size_t n);

}  // namespace sdb::geom

#endif  // SPATIALBUFFER_GEOM_ENTRY_AGGREGATES_H_
