#include "sim/experiment.h"

#include "common/macros.h"
#include "core/buffer_manager.h"
#include "core/policy_asb.h"
#include "core/policy_lru_k.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"
#include "storage/disk_view.h"

namespace sdb::sim {

double GainVersus(const RunResult& baseline, const RunResult& result) {
  SDB_CHECK(result.disk_reads > 0);
  return static_cast<double>(baseline.disk_reads) /
             static_cast<double>(result.disk_reads) -
         1.0;
}

RunResult RunQuerySet(const storage::DiskManager& disk,
                      storage::PageId tree_meta,
                      const std::string& policy_spec,
                      const workload::QuerySet& queries,
                      const RunOptions& options) {
  std::unique_ptr<core::ReplacementPolicy> policy =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(policy != nullptr, "unknown policy spec");

  // Per-run read-only view: this run's I/O counters are private, so many
  // runs can share one disk image concurrently. The view aborts on writes —
  // replay is read-only by contract.
  storage::ReadOnlyDiskView view(disk);
  core::BufferManager buffer(&view, options.buffer_frames,
                             std::move(policy));
  const rtree::RTree tree = rtree::RTree::Open(&disk, &buffer, tree_meta);
  auto* asb = options.trace_candidate_size
                  ? dynamic_cast<core::AsbPolicy*>(&buffer.policy())
                  : nullptr;

  RunResult result;
  result.policy = std::string(buffer.policy().name());
  result.query_set = queries.name;
  result.buffer_frames = options.buffer_frames;
  if (asb != nullptr) result.candidate_trace.reserve(queries.queries.size());

  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx,
                          [&result](const rtree::Entry&) {
                            ++result.result_objects;
                          });
    if (asb != nullptr) {
      result.candidate_trace.push_back(asb->candidate_size());
    }
  }

  if (const auto* lru_k =
          dynamic_cast<const core::LruKPolicy*>(&buffer.policy())) {
    result.retained_history_records = lru_k->retained_history_size();
  }
  result.disk_reads = view.stats().reads;
  result.sequential_reads = view.stats().sequential_reads;
  result.buffer_requests = buffer.stats().requests;
  result.buffer_hits = buffer.stats().hits;
  SDB_CHECK_MSG(view.stats().writes == 0,
                "read-only replay must not write");
  return result;
}

}  // namespace sdb::sim
