#include "sim/experiment.h"

#include "common/macros.h"
#include "core/buffer_manager.h"
#include "core/policy_lru_k.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"
#include "storage/disk_view.h"

namespace sdb::sim {

double GainVersus(const RunResult& baseline, const RunResult& result) {
  SDB_CHECK(result.disk_reads > 0);
  return static_cast<double>(baseline.disk_reads) /
             static_cast<double>(result.disk_reads) -
         1.0;
}

std::vector<size_t> AsbCandidateTrace(const obs::EventRing& events,
                                      size_t query_count) {
  // (query, c-after-that-query) change points, in stream order.
  bool saw_init = false;
  size_t current = 0;
  std::vector<std::pair<uint64_t, size_t>> changes;
  events.ForEach([&](const obs::Event& event) {
    switch (event.kind) {
      case obs::EventKind::kAsbInit:
        saw_init = true;
        current = static_cast<size_t>(event.c);
        break;
      case obs::EventKind::kAsbAdapt:
        changes.emplace_back(event.query, static_cast<size_t>(event.c));
        break;
      default:
        break;
    }
  });
  if (!saw_init) return {};
  SDB_CHECK_MSG(events.dropped() == 0,
                "candidate trace needs the complete event stream");
  std::vector<size_t> trace;
  trace.reserve(query_count);
  size_t next = 0;
  for (uint64_t q = 1; q <= query_count; ++q) {
    while (next < changes.size() && changes[next].first <= q) {
      current = changes[next].second;
      ++next;
    }
    trace.push_back(current);
  }
  return trace;
}

RunResult RunQuerySet(const storage::DiskManager& disk,
                      storage::PageId tree_meta,
                      const std::string& policy_spec,
                      const workload::QuerySet& queries,
                      const RunOptions& options) {
  std::unique_ptr<core::ReplacementPolicy> policy =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(policy != nullptr, "unknown policy spec");

  // Per-run read-only view: this run's I/O counters are private, so many
  // runs can share one disk image concurrently. The view aborts on writes —
  // replay is read-only by contract. With a fault profile the buffer reads
  // through an injecting wrapper instead; the wrapper's stats() still
  // report clean reads only, so `result.io` stays comparable.
  storage::ReadOnlyDiskView view(disk);
  std::unique_ptr<storage::FaultInjectingDevice> fault_device;
  storage::PageDevice* device = &view;
  if (options.fault_profile.enabled()) {
    fault_device = std::make_unique<storage::FaultInjectingDevice>(
        view, options.fault_profile);
    device = fault_device.get();
  }
  core::BufferManager buffer(device, options.buffer_frames,
                             std::move(policy), options.collector,
                             options.resilience);

  const rtree::RTree tree = rtree::RTree::Open(&disk, &buffer, tree_meta);

  RunResult result;
  result.policy = std::string(buffer.policy().name());
  result.query_set = queries.name;
  result.buffer_frames = options.buffer_frames;

  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx,
                          [&result](const rtree::Entry&) {
                            ++result.result_objects;
                          });
  }

  if (const auto* lru_k =
          dynamic_cast<const core::LruKPolicy*>(&buffer.policy())) {
    result.retained_history_records = lru_k->retained_history_size();
  }
  // Clean-read counters: with a fault device these exclude faulted
  // attempts, so a fully-recovered run matches the fault-free run exactly.
  result.io = device->stats();
  result.disk_reads = result.io.reads;
  result.sequential_reads = result.io.sequential_reads;
  result.buffer_requests = buffer.stats().requests;
  result.buffer_hits = buffer.stats().hits;
  if (fault_device != nullptr) {
    result.fault_injection = true;
    result.faults_injected = fault_device->fault_stats().injected();
  }
  result.io_read_retries = buffer.stats().io_read_retries;
  result.io_checksum_mismatches = buffer.stats().io_checksum_mismatches;
  result.io_recovered_reads = buffer.stats().io_recovered_reads;
  result.io_permanent_failures = buffer.stats().io_permanent_failures;
  result.io_quarantined_frames = buffer.stats().io_quarantined_frames;
  result.io_errors = tree.io_errors();
  SDB_CHECK_MSG(view.stats().writes == 0,
                "read-only replay must not write");
  if (obs::Collector* c = buffer.collector()) {
    // Publish the totals the hot paths do not maintain eagerly, then the
    // view-level I/O split (once — the view dies with this call, so these
    // are final values, not deltas).
    buffer.FlushObservability();
    c->metrics().GetCounter("disk.reads")->Add(result.io.reads);
    c->metrics()
        .GetCounter("disk.sequential_reads")
        ->Add(result.io.sequential_reads);
    if (result.retained_history_records > 0) {
      c->metrics()
          .GetGauge("lru_k.retained_history")
          ->Set(static_cast<double>(result.retained_history_records));
    }
    result.metrics = c->metrics().Snapshot();
  }
  return result;
}

}  // namespace sdb::sim
