#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "sim/report.h"

namespace sdb::sim {

unsigned BenchThreadsFromEnv() {
  const char* env = std::getenv("SDB_BENCH_THREADS");
  if (env == nullptr || env[0] == '\0') return 1;
  const long value = std::strtol(env, nullptr, 10);
  return value < 1 ? 1u : static_cast<unsigned>(value);
}

std::string BenchJsonPath() {
  const char* env = std::getenv("SDB_BENCH_JSON");
  return env == nullptr ? std::string("BENCH_sweep.json") : std::string(env);
}

SweepResult RunSweep(const Scenario& scenario, const SweepSpec& spec) {
  SDB_CHECK_MSG(!spec.fractions.empty() && !spec.sets.empty(),
                "sweep needs at least one fraction and one query set");
  const size_t set_count = spec.sets.size();
  const size_t policy_count = spec.policies.size();

  // Query sets are generated once, on this thread; workers only read them.
  std::vector<workload::QuerySet> query_sets;
  query_sets.reserve(set_count);
  for (const SweepSet& set : spec.sets) {
    query_sets.push_back(StandardQuerySet(scenario, set.family, set.ex));
  }

  SweepResult result;
  result.set_count = set_count;
  result.policy_count = policy_count;
  result.baselines.resize(spec.fractions.size() * set_count);
  result.cells.resize(spec.fractions.size() * set_count * policy_count);

  // Flatten the grid into independent tasks, each with a preassigned result
  // slot: one baseline run per (fraction, set) — shared by all policy
  // columns — plus one run per policy cell. `policy == policy_count` marks
  // the baseline task.
  struct Task {
    size_t fraction;
    size_t set;
    size_t policy;
  };
  std::vector<Task> tasks;
  tasks.reserve(result.baselines.size() + result.cells.size());
  for (size_t fi = 0; fi < spec.fractions.size(); ++fi) {
    for (size_t si = 0; si < set_count; ++si) {
      tasks.push_back({fi, si, policy_count});
      for (size_t pi = 0; pi < policy_count; ++pi) {
        tasks.push_back({fi, si, pi});
      }
    }
  }

  result.timings.resize(tasks.size());
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto micros_since_start = [sweep_start] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - sweep_start)
            .count());
  };

  const auto run_task = [&](const Task& task, size_t task_index,
                            uint32_t worker) {
    RunOptions options;
    options.buffer_frames =
        scenario.BufferFrames(spec.fractions[task.fraction]);
    options.fault_profile = spec.fault_profile;
    options.resilience = spec.resilience;
    // One private collector per replay keeps the runner lock-free; the
    // snapshot travels to this thread inside the task's result slot and the
    // slots are merged in index order after the join.
    std::optional<obs::Collector> collector;
    if (spec.collect_metrics) {
      obs::CollectorOptions collector_options;
      collector_options.event_capacity = 0;
      collector.emplace(collector_options);
      options.collector = &*collector;
    }
    const bool is_baseline = task.policy == policy_count;
    const std::string& policy =
        is_baseline ? spec.baseline : spec.policies[task.policy];
    TaskTiming& timing = result.timings[task_index];
    timing.worker = worker;
    timing.begin_us = micros_since_start();
    RunResult run = RunQuerySet(*scenario.disk, scenario.tree_meta, policy,
                                query_sets[task.set], options);
    timing.end_us = micros_since_start();
    timing.name = run.policy + "/" + run.query_set + "/" +
                  std::to_string(run.buffer_frames);
    const size_t row = task.fraction * set_count + task.set;
    if (is_baseline) {
      result.baselines[row] = std::move(run);
    } else {
      SweepCell& cell = result.cells[row * policy_count + task.policy];
      cell.fraction_index = task.fraction;
      cell.set_index = task.set;
      cell.policy_index = task.policy;
      cell.result = std::move(run);
    }
  };

  const unsigned threads =
      spec.threads == 0 ? BenchThreadsFromEnv() : spec.threads;
  if (threads <= 1 || tasks.size() <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_task(tasks[i], i, 0);
  } else {
    // Work-stealing by atomic cursor: each worker claims the next
    // unstarted task. Every task writes only its preassigned slot, so no
    // further synchronization is needed; joining (jthread destructor)
    // publishes the results to this thread.
    std::atomic<size_t> next{0};
    const unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads, tasks.size()));
    {
      std::vector<std::jthread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
               i < tasks.size();
               i = next.fetch_add(1, std::memory_order_relaxed)) {
            run_task(tasks[i], i, w);
          }
        });
      }
    }
  }

  for (SweepCell& cell : result.cells) {
    cell.gain =
        GainVersus(result.baseline(cell.fraction_index, cell.set_index),
                   cell.result);
  }
  if (spec.collect_metrics) {
    // Deterministic merge: baselines then cells, in index order. The merge
    // rules are order-insensitive anyway (see MetricsRegistry::Merge), so
    // the merged snapshot is identical for every thread count.
    obs::MetricsRegistry merged;
    for (const RunResult& run : result.baselines) merged.Merge(run.metrics);
    for (const SweepCell& cell : result.cells) {
      merged.Merge(cell.result.metrics);
    }
    result.metrics = merged.Snapshot();
  }
  return result;
}

bool WriteSweepTrace(const std::string& path, const SweepResult& result) {
  if (path.empty() || result.timings.empty()) return false;
  obs::ChromeTraceWriter writer;
  uint32_t max_worker = 0;
  for (const TaskTiming& timing : result.timings) {
    max_worker = std::max(max_worker, timing.worker);
    writer.AddCompleteEvent(timing.name, timing.worker, timing.begin_us,
                            timing.end_us - timing.begin_us);
  }
  for (uint32_t w = 0; w <= max_worker; ++w) {
    writer.SetThreadName(w, "worker " + std::to_string(w));
  }
  return writer.Write(path);
}

void PrintSweepTables(const Scenario& scenario, const SweepSpec& spec,
                      const SweepResult& result, const std::string& title) {
  for (size_t fi = 0; fi < spec.fractions.size(); ++fi) {
    std::vector<std::string> header{"query set"};
    for (const std::string& policy : spec.policies) header.push_back(policy);
    Table table(header);
    for (size_t si = 0; si < spec.sets.size(); ++si) {
      std::vector<std::string> row{result.baseline(fi, si).query_set};
      for (size_t pi = 0; pi < spec.policies.size(); ++pi) {
        row.push_back(FormatGain(result.cell(fi, si, pi).gain));
      }
      table.AddRow(std::move(row));
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s — %s, buffer %.1f%% (%zu frames), gain vs %s",
                  title.c_str(), scenario.name.c_str(),
                  spec.fractions[fi] * 100.0,
                  scenario.BufferFrames(spec.fractions[fi]),
                  spec.baseline.c_str());
    table.Print(buf);
  }
}

namespace {

std::string RunJson(const std::string& title, const std::string& database,
                    double fraction, const RunResult& run, double gain,
                    bool is_baseline) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":%d,"
      "\"bench\":\"%s\",\"database\":\"%s\",\"fraction\":%g,"
      "\"buffer_frames\":%zu,\"query_set\":\"%s\",\"policy\":\"%s\","
      "\"baseline\":%s,\"disk_reads\":%llu,\"sequential_reads\":%llu,"
      "\"random_reads\":%llu,"
      "\"buffer_requests\":%llu,\"buffer_hits\":%llu,\"gain\":%.6f",
      obs::kBenchJsonSchemaVersion,
      JsonEscape(title).c_str(), JsonEscape(database).c_str(), fraction,
      run.buffer_frames, JsonEscape(run.query_set).c_str(),
      JsonEscape(run.policy).c_str(), is_baseline ? "true" : "false",
      static_cast<unsigned long long>(run.disk_reads),
      static_cast<unsigned long long>(run.sequential_reads),
      static_cast<unsigned long long>(run.io.random_reads()),
      static_cast<unsigned long long>(run.buffer_requests),
      static_cast<unsigned long long>(run.buffer_hits), gain);
  std::string line(buf);
  if (run.fault_injection) {
    char fault_buf[448];
    std::snprintf(
        fault_buf, sizeof(fault_buf),
        ",\"faults_injected\":%llu,\"io_read_retries\":%llu,"
        "\"io_checksum_mismatches\":%llu,\"io_recovered_reads\":%llu,"
        "\"io_permanent_failures\":%llu,\"io_quarantined_frames\":%llu,"
        "\"io_errors\":%llu",
        static_cast<unsigned long long>(run.faults_injected),
        static_cast<unsigned long long>(run.io_read_retries),
        static_cast<unsigned long long>(run.io_checksum_mismatches),
        static_cast<unsigned long long>(run.io_recovered_reads),
        static_cast<unsigned long long>(run.io_permanent_failures),
        static_cast<unsigned long long>(run.io_quarantined_frames),
        static_cast<unsigned long long>(run.io_errors));
    line += fault_buf;
  }
  if (!run.metrics.empty()) {
    // Per-run registry snapshot, embedded so each JSONL row is
    // self-contained for downstream analysis.
    line += ",\"metrics\":";
    line += obs::MetricsJson(run.metrics);
  }
  line += "}";
  return line;
}

}  // namespace

bool AppendSweepJson(const std::string& path, const std::string& title,
                     const Scenario& scenario, const SweepSpec& spec,
                     const SweepResult& result) {
  if (path.empty()) return true;
  bool ok = true;
  for (size_t fi = 0; fi < spec.fractions.size(); ++fi) {
    for (size_t si = 0; si < spec.sets.size(); ++si) {
      ok = AppendJsonLine(path,
                          RunJson(title, scenario.name, spec.fractions[fi],
                                  result.baseline(fi, si), 0.0,
                                  /*is_baseline=*/true)) &&
           ok;
      for (size_t pi = 0; pi < spec.policies.size(); ++pi) {
        const SweepCell& cell = result.cell(fi, si, pi);
        ok = AppendJsonLine(path,
                            RunJson(title, scenario.name, spec.fractions[fi],
                                    cell.result, cell.gain,
                                    /*is_baseline=*/false)) &&
             ok;
      }
    }
  }
  return ok;
}

}  // namespace sdb::sim
