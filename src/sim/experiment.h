#ifndef SPATIALBUFFER_SIM_EXPERIMENT_H_
#define SPATIALBUFFER_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/buffer_manager.h"
#include "obs/collector.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "workload/query_generator.h"

namespace sdb::sim {

/// Options of one measured run.
struct RunOptions {
  size_t buffer_frames = 64;
  /// Observability sink for the run's buffer and policy (nullptr = none).
  /// The collector must outlive the call; its registry accumulates across
  /// runs when reused, and the end-of-run flush also publishes the run's
  /// device-level I/O split (disk.reads / disk.sequential_reads) so the
  /// random/sequential breakdown survives into merged sweep metrics.
  obs::Collector* collector = nullptr;
  /// When enabled(), the run reads through a FaultInjectingDevice wrapping
  /// its private view; the buffer retries/recovers per `resilience`. The
  /// device's clean-read accounting keeps `RunResult::io` (the paper's
  /// metric) bit-identical to a fault-free run whenever every injected
  /// fault is recovered.
  storage::FaultProfile fault_profile;
  /// Retry/checksum/quarantine knobs of the run's buffer.
  core::ResilienceOptions resilience;
};

/// Result of replaying one query set through one buffer configuration.
struct RunResult {
  std::string policy;
  std::string query_set;
  size_t buffer_frames = 0;
  uint64_t disk_reads = 0;      ///< the paper's metric
  uint64_t sequential_reads = 0;  ///< reads at previous-page + 1
  uint64_t buffer_requests = 0;
  uint64_t buffer_hits = 0;
  uint64_t result_objects = 0;  ///< total query results (answer checksum)
  /// LRU-K only: history records retained for pages no longer buffered at
  /// the end of the run — the unbounded memory overhead the paper holds
  /// against LRU-K (0 for every other policy).
  uint64_t retained_history_records = 0;
  /// Complete per-view device counters (the fields above are the two the
  /// paper charts; the full struct keeps writes and the random/sequential
  /// split from being discarded when runs execute on private disk views).
  storage::IoStats io;
  /// End-of-run registry snapshot when a collector was attached (empty
  /// otherwise).
  obs::MetricsSnapshot metrics;
  /// True when the run executed through a FaultInjectingDevice (even if it
  /// injected nothing). Reporting keys fault fields off this flag so
  /// fault-free output stays byte-identical.
  bool fault_injection = false;
  /// Fault-run accounting (all zero without a fault profile): what the
  /// device injected and what the buffer did about it. The recovery ledger
  /// must balance: faults_injected == io_read_retries + io_permanent_failures.
  uint64_t faults_injected = 0;
  uint64_t io_read_retries = 0;
  uint64_t io_checksum_mismatches = 0;
  uint64_t io_recovered_reads = 0;
  uint64_t io_permanent_failures = 0;
  uint64_t io_quarantined_frames = 0;
  /// Query fetches that failed terminally and were absorbed by traversal
  /// (subtree pruned); nonzero means result_objects is a lower bound.
  uint64_t io_errors = 0;

  double hit_rate() const {
    return buffer_requests == 0
               ? 0.0
               : static_cast<double>(buffer_hits) /
                     static_cast<double>(buffer_requests);
  }
};

/// Relative performance gain as reported throughout the paper:
/// |disk accesses of LRU| / |disk accesses of policy| - 1.
double GainVersus(const RunResult& baseline, const RunResult& result);

/// Reconstructs the Fig. 14 per-query candidate-set-size trace from an ASB
/// event stream: entry q-1 is c after query q (query ids are 1-based, as
/// issued by RunQuerySet). Requires the stream's kAsbInit event and every
/// kAsbAdapt event — i.e. an unbounded or sufficiently large ring with
/// dropped() == 0; aborts otherwise. Returns an empty vector if the stream
/// holds no kAsbInit (non-ASB run).
std::vector<size_t> AsbCandidateTrace(const obs::EventRing& events,
                                      size_t query_count);

/// Replays `queries` against the persisted tree on `disk` (meta page
/// `tree_meta`) through a *fresh* buffer of `options.buffer_frames` frames
/// managed by the policy created from `policy_spec` ("LRU", "LRU-2", "A",
/// "SLRU:A:0.25", "ASB", ...). The buffer starts cold (the paper clears the
/// buffer before each query set); every query gets its own query id so
/// LRU-K's correlation detection works as specified. Aborts on an unknown
/// policy spec.
///
/// The run performs its I/O through a private ReadOnlyDiskView, so the
/// shared disk image is never written and its device counters are never
/// touched: any number of RunQuerySet calls over the same disk may execute
/// concurrently (the sweep runner does exactly that), provided nothing
/// mutates the disk meanwhile.
RunResult RunQuerySet(const storage::DiskManager& disk,
                      storage::PageId tree_meta,
                      const std::string& policy_spec,
                      const workload::QuerySet& queries,
                      const RunOptions& options);

/// Pointer-taking convenience wrapper (the historical signature).
inline RunResult RunQuerySet(storage::DiskManager* disk,
                             storage::PageId tree_meta,
                             const std::string& policy_spec,
                             const workload::QuerySet& queries,
                             const RunOptions& options) {
  return RunQuerySet(*disk, tree_meta, policy_spec, queries, options);
}

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_EXPERIMENT_H_
