#ifndef SPATIALBUFFER_SIM_SCENARIO_H_
#define SPATIALBUFFER_SIM_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "rtree/rtree.h"
#include "storage/disk_manager.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace sdb::sim {

/// Which of the paper's two databases to synthesize.
enum class DatabaseKind {
  kUsLike,     ///< database 1: US-mainland-like clustered map
  kWorldLike,  ///< database 2: world-atlas-like sparse continents
};

/// How to construct the R*-tree.
enum class BuildMode {
  kInsert,    ///< one-by-one R* insertion (the paper's trees; slower)
  kBulkLoad,  ///< STR packing (fast; used by tests and quick runs)
};

/// A fully built experiment database: the synthetic map, its R*-tree
/// persisted on a simulated disk, and the derived places table for the
/// query generators.
struct Scenario {
  std::string name;
  std::unique_ptr<storage::DiskManager> disk;
  storage::PageId tree_meta = storage::kInvalidPageId;
  rtree::TreeStats tree_stats;
  workload::Dataset dataset;
  workload::PlacesTable places;

  /// Buffer size in frames for a relative size (fraction of tree pages),
  /// as the paper specifies buffers in percent of the data set.
  size_t BufferFrames(double fraction) const;
};

/// Options of BuildScenario. `scale` multiplies the default object counts
/// (honored from the SDB_SCALE environment variable by DefaultScale()).
struct ScenarioOptions {
  DatabaseKind kind = DatabaseKind::kUsLike;
  BuildMode build = BuildMode::kInsert;
  /// Tree construction algorithm (only meaningful with kInsert).
  rtree::TreeVariant variant = rtree::TreeVariant::kRStar;
  double scale = 1.0;
  uint64_t seed = 0;  ///< 0 = the kind's canonical seed
};

/// Scale factor from the SDB_SCALE environment variable (default 1.0).
double DefaultScale();

/// Synthesizes the map, builds and validates the R*-tree, flushes it to the
/// simulated disk and returns the ready-to-replay scenario.
Scenario BuildScenario(const ScenarioOptions& options);

/// Like BuildScenario, but caches the built disk image in the directory
/// named by the SDB_CACHE_DIR environment variable and reuses it on
/// subsequent calls with the same options, skipping the (multi-second) tree
/// construction. Without SDB_CACHE_DIR this is plain BuildScenario.
Scenario BuildCachedScenario(const ScenarioOptions& options);

/// The paper's buffer-size ladder: 0.3%, 0.6%, 1.2%, 2.4%, 4.7% of the tree.
inline constexpr double kBufferFractions[] = {0.003, 0.006, 0.012, 0.024,
                                              0.047};

/// The paper's window extents (reciprocal): W-1000 .. W-33.
inline constexpr int kWindowExtents[] = {1000, 333, 100, 33};

/// Number of queries for a query set so that the produced disk accesses are
/// roughly 10-20x the largest investigated buffer, as in Sec. 3.1. Derived
/// empirically from the access cost per query type.
size_t DefaultQueryCount(const Scenario& scenario, int ex);

/// Builds the standard query set of a family/extent with DefaultQueryCount
/// queries and a deterministic per-set seed.
workload::QuerySet StandardQuerySet(const Scenario& scenario,
                                    workload::QueryFamily family, int ex);

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_SCENARIO_H_
