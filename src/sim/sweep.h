#ifndef SPATIALBUFFER_SIM_SWEEP_H_
#define SPATIALBUFFER_SIM_SWEEP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/query_generator.h"

namespace sdb::sim {

/// One query-set coordinate of a sweep: a family plus the paper's
/// reciprocal window extent (0 = point queries).
struct SweepSet {
  workload::QueryFamily family;
  int ex = 0;
};

/// A full experiment grid: every (buffer fraction × query set × policy)
/// cell, plus one baseline run per (fraction, set) pair that all policy
/// columns of that table row share — the repeated LRU re-runs of the old
/// per-cell loop are gone in sequential mode too.
struct SweepSpec {
  std::vector<double> fractions;
  std::vector<SweepSet> sets;
  std::vector<std::string> policies;  ///< table columns
  std::string baseline = "LRU";       ///< gain reference, run once per row
  /// Worker threads; 0 = read SDB_BENCH_THREADS (default 1). The results
  /// are identical for every thread count.
  unsigned threads = 0;
  /// Attach a private obs::Collector to every run (one per replay — the
  /// runner stays lock-free) and merge the snapshots into SweepResult
  /// deterministically after the join. Per-run snapshots land in each
  /// RunResult::metrics; events are not collected (capacity 0).
  bool collect_metrics = false;
  /// Forwarded to every run's RunOptions: when the profile is enabled(),
  /// each run reads through its own FaultInjectingDevice and its JSON row
  /// gains the fault-accounting fields. Disabled (the default) leaves the
  /// sweep and its JSON byte-identical to a build without the fault layer.
  storage::FaultProfile fault_profile;
  core::ResilienceOptions resilience;
};

/// One measured grid cell.
struct SweepCell {
  size_t fraction_index = 0;
  size_t set_index = 0;
  size_t policy_index = 0;
  RunResult result;
  double gain = 0.0;  ///< versus the (fraction, set) baseline
};

/// Wall-clock span of one replay task, for the Chrome-trace export of the
/// runner's worker timelines. Timestamps are microseconds from the sweep
/// start. The worker assignment (and hence the timing layout) depends on
/// scheduling; the measured results never do.
struct TaskTiming {
  std::string name;     ///< "policy/query_set/frames"
  uint32_t worker = 0;  ///< worker-thread index (0 when sequential)
  uint64_t begin_us = 0;
  uint64_t end_us = 0;
};

/// All runs of a sweep, in deterministic (fraction, set, policy) order.
struct SweepResult {
  std::vector<RunResult> baselines;  ///< fraction-major × set
  std::vector<SweepCell> cells;      ///< fraction-major × set × policy
  size_t set_count = 0;
  size_t policy_count = 0;
  /// Merged metrics of every run (baselines first, then cells, in index
  /// order — the merge is deterministic for any thread count). Empty unless
  /// SweepSpec::collect_metrics.
  obs::MetricsSnapshot metrics;
  /// One entry per task, in task order.
  std::vector<TaskTiming> timings;

  const RunResult& baseline(size_t fraction_index, size_t set_index) const {
    return baselines[fraction_index * set_count + set_index];
  }
  const SweepCell& cell(size_t fraction_index, size_t set_index,
                        size_t policy_index) const {
    return cells[(fraction_index * set_count + set_index) * policy_count +
                 policy_index];
  }
};

/// Worker-thread count from the SDB_BENCH_THREADS environment variable
/// (minimum 1; unset/invalid = 1).
unsigned BenchThreadsFromEnv();

/// Runs the whole grid. Every run replays through its own BufferManager
/// over its own ReadOnlyDiskView of the scenario's disk, so runs are fully
/// independent and execute concurrently on `spec.threads` workers. Query
/// sets are generated once, up front, on the calling thread.
SweepResult RunSweep(const Scenario& scenario, const SweepSpec& spec);

/// Prints one gain table per buffer fraction (rows = query sets, columns =
/// policies, cells = gain versus the baseline) — the paper's reporting
/// format, byte-identical for every thread count.
void PrintSweepTables(const Scenario& scenario, const SweepSpec& spec,
                      const SweepResult& result, const std::string& title);

/// Appends one JSON-Lines record per measured run (baselines included) to
/// `path` — the machine-readable counterpart of the printed tables.
/// Returns false on I/O failure.
bool AppendSweepJson(const std::string& path, const std::string& title,
                     const Scenario& scenario, const SweepSpec& spec,
                     const SweepResult& result);

/// Writes the sweep's task timings as a Chrome trace_event file (one track
/// per worker) loadable in chrome://tracing / ui.perfetto.dev. Returns false
/// on I/O failure (or if the sweep recorded no timings).
bool WriteSweepTrace(const std::string& path, const SweepResult& result);

/// JSON sink of the figure benches: "BENCH_sweep.json", overridable via
/// SDB_BENCH_JSON (set to an empty string to disable; callers skip the
/// empty path).
std::string BenchJsonPath();

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_SWEEP_H_
