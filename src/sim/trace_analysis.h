#ifndef SPATIALBUFFER_SIM_TRACE_ANALYSIS_H_
#define SPATIALBUFFER_SIM_TRACE_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/trace.h"

namespace sdb::sim {

/// Locality profile of one access trace: LRU stack distances (Mattson),
/// computed exactly in O(N log N) with a Fenwick tree. The stack distance
/// of an access is the number of *distinct* pages referenced since the
/// previous access to the same page; first touches have infinite distance.
///
/// Why this exists: stack distances explain the experiments. The miss count
/// of an LRU buffer with C frames equals the number of accesses with
/// distance > C — one pass yields the whole LRU miss curve, and the
/// distance histogram shows how much locality a query distribution offers
/// for *any* policy to exploit.
struct TraceProfile {
  uint64_t total_accesses = 0;
  uint64_t unique_pages = 0;   ///< == number of infinite-distance accesses
  /// histogram[b] counts accesses with stack distance in [2^b, 2^(b+1));
  /// bucket 0 holds distance 1 (immediate re-reference after one other
  /// page), distance 0 cannot occur.
  std::vector<uint64_t> distance_histogram;
  /// Exact stack distance per access; UINT64_MAX for first touches. Kept so
  /// callers can evaluate arbitrary buffer sizes.
  std::vector<uint64_t> distances;

  /// Exact LRU misses for a buffer of `frames` frames (cold start).
  uint64_t LruMisses(size_t frames) const;

  /// Share of accesses that re-reference a page within `frames` distinct
  /// pages (the best hit rate any conservative demand-paging policy of that
  /// size could approach on this trace).
  double LocalityAt(size_t frames) const;
};

/// Computes the profile of a trace.
TraceProfile AnalyzeTrace(const AccessTrace& trace);

/// Smallest buffer size (in frames) whose *predicted LRU* hit rate on this
/// trace reaches `target_hit_rate`, or nullopt if no size can (compulsory
/// first-touch misses bound the hit rate from above). Exact, via the
/// profile's stack distances — the classic Mattson "one pass, all cache
/// sizes" sizing question.
std::optional<size_t> RecommendBufferSize(const TraceProfile& profile,
                                          double target_hit_rate);

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_TRACE_ANALYSIS_H_
