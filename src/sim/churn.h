#ifndef SPATIALBUFFER_SIM_CHURN_H_
#define SPATIALBUFFER_SIM_CHURN_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/access_context.h"
#include "core/status.h"
#include "geom/rect.h"
#include "rtree/rtree.h"

namespace sdb::sim {

/// Knobs of one churn run (bulk-load-then-churn write workload).
struct ChurnOptions {
  /// Total operations (inserts + delete attempts).
  size_t operations = 1000;
  /// Probability an operation deletes a random live churn entry rather than
  /// inserting a fresh one. Deletes only target entries this run inserted,
  /// so the bulk-loaded population is preserved.
  double delete_fraction = 0.3;
  uint64_t seed = 42;
  /// Invoke the commit hook every N operations (0 = never).
  size_t commit_every = 0;
  /// Invoke the checkpoint hook every N operations (0 = never).
  size_t checkpoint_every = 0;
  /// First object id handed to churn inserts; must sit above the ids of the
  /// bulk-loaded population so deletes never collide with it.
  uint64_t first_id = 1ull << 40;
  /// Inserted rectangle extent as a fraction of the data-space extent.
  double extent_fraction = 0.002;
  /// Operations considered warm-up: after this many, the on_steady_state
  /// hook fires once. Benches reset their counters there so watermark and
  /// fallback gates measure steady state, not the cold ramp where the pool
  /// fills with first-touch dirty pages. 0 = no warm-up phase.
  size_t warmup_operations = 0;
};

/// Durability callbacks fired on the commit_every / checkpoint_every
/// boundaries. Unset hooks are skipped (the cadence still counts).
struct ChurnHooks {
  std::function<core::Status()> commit;
  std::function<core::Status()> checkpoint;
  /// Fired once, right after warmup_operations operations completed (their
  /// cadence hooks included). Never fired when warmup_operations is 0 or
  /// exceeds the run length.
  std::function<core::Status()> on_steady_state;
};

struct ChurnResult {
  size_t inserts = 0;
  size_t deletes = 0;
  size_t commits = 0;
  size_t checkpoints = 0;
  /// Churn entries still present when the run ended.
  size_t live = 0;
};

/// Drives a deterministic, seeded insert/delete stream against an already
/// bulk-loaded tree: each operation either inserts a fresh small rectangle
/// at a uniform position in `space` or deletes a uniformly chosen entry
/// among those this run inserted. Hook failures abort the run with the
/// hook's status (operations already applied stay applied — the caller's
/// recovery story, not ours).
core::StatusOr<ChurnResult> RunChurn(rtree::RTree& tree,
                                     const geom::Rect& space,
                                     const ChurnOptions& options,
                                     const ChurnHooks& hooks = {},
                                     const core::AccessContext& ctx = {});

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_CHURN_H_
