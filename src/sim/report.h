#ifndef SPATIALBUFFER_SIM_REPORT_H_
#define SPATIALBUFFER_SIM_REPORT_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdb::sim {

/// Minimal fixed-width table printer used by the benchmark binaries to emit
/// the paper's figures as text. The first row is the header; cells are
/// right-aligned except the first column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders to stdout with column separators, plus an optional title line.
  /// When the SDB_CSV environment variable is set (non-empty), a
  /// machine-readable CSV block follows the table, for plotting pipelines.
  void Print(const std::string& title = "") const;

  /// Writes the rows (header first) as CSV to stdout.
  void PrintCsv(const std::string& title = "") const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Appends one JSON object as a single line (JSON-Lines) to `path`. The
/// first append to a path within this process truncates the file, so every
/// bench invocation starts a fresh trajectory while successive sweeps of
/// one invocation accumulate. Returns false on I/O failure.
bool AppendJsonLine(const std::string& path, const std::string& object);

/// "+12.3%" / "-4.2%" formatting for relative gains.
std::string FormatGain(double gain);

/// "97.3%" formatting for ratios.
std::string FormatPercent(double value);

/// Fixed-precision double.
std::string FormatDouble(double value, int precision = 2);

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_REPORT_H_
