#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/bulk_load.h"

namespace sdb::sim {

size_t Scenario::BufferFrames(double fraction) const {
  return std::max<size_t>(
      8, static_cast<size_t>(std::lround(
             fraction * static_cast<double>(tree_stats.total_pages()))));
}

double DefaultScale() {
  const char* env = std::getenv("SDB_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::strtod(env, nullptr);
  return scale > 0.0 ? scale : 1.0;
}

Scenario BuildScenario(const ScenarioOptions& options) {
  workload::MapParams params =
      options.kind == DatabaseKind::kUsLike
          ? workload::UsLikeParams(options.scale)
          : workload::WorldLikeParams(options.scale);
  if (options.seed != 0) params.seed = options.seed;

  workload::GeneratedMap map = workload::GenerateMap(params);

  Scenario scenario;
  scenario.name = params.name;
  scenario.disk = std::make_unique<storage::DiskManager>();

  // A build buffer comfortably larger than the final tree keeps
  // construction fast; experiments later use their own fresh buffers.
  const size_t build_frames = map.dataset.objects.size() / 16 + 2048;
  {
    core::BufferManager build_buffer(scenario.disk.get(), build_frames,
                                     std::make_unique<core::LruPolicy>());
    rtree::RTreeConfig tree_config;
    tree_config.variant = options.variant;
    rtree::RTree tree(scenario.disk.get(), &build_buffer, tree_config);
    const core::AccessContext ctx;  // outside any query

    if (options.build == BuildMode::kBulkLoad) {
      std::vector<rtree::Entry> entries;
      entries.reserve(map.dataset.objects.size());
      for (const workload::SpatialObject& object : map.dataset.objects) {
        rtree::Entry entry;
        entry.rect = object.rect;
        entry.id = object.id;
        entries.push_back(entry);
      }
      rtree::BulkLoad(&tree, std::move(entries), ctx);
    } else {
      for (const workload::SpatialObject& object : map.dataset.objects) {
        rtree::Entry entry;
        entry.rect = object.rect;
        entry.id = object.id;
        tree.Insert(entry, ctx);
      }
      tree.PersistMeta();
    }
    build_buffer.FlushAll();

    const std::string error = tree.Validate();
    SDB_CHECK_MSG(error.empty(), error.c_str());
    scenario.tree_meta = tree.meta_page();
    scenario.tree_stats = tree.ComputeStats();
  }
  scenario.disk->ResetStats();

  scenario.dataset = std::move(map.dataset);
  scenario.places = std::move(map.places);
  return scenario;
}

Scenario BuildCachedScenario(const ScenarioOptions& options) {
  const char* cache_dir = std::getenv("SDB_CACHE_DIR");
  if (cache_dir == nullptr || cache_dir[0] == '\0') {
    return BuildScenario(options);
  }
  char path[512];
  std::snprintf(path, sizeof(path), "%s/sdb_%s_%g_v%u_s%llu.img", cache_dir,
                options.kind == DatabaseKind::kUsLike ? "us" : "world",
                options.scale, static_cast<unsigned>(options.variant),
                static_cast<unsigned long long>(options.seed));

  if (auto disk = storage::DiskManager::LoadImage(path)) {
    // The meta page is always the first page the tree allocates.
    const storage::PageId meta_page = 0;
    if (disk->page_count() > 0 &&
        disk->PeekMeta(meta_page).type == storage::PageType::kMeta) {
      Scenario scenario;
      scenario.disk =
          std::make_unique<storage::DiskManager>(std::move(*disk));
      scenario.tree_meta = meta_page;
      {
        core::BufferManager stats_buffer(
            scenario.disk.get(), 64, std::make_unique<core::LruPolicy>());
        const rtree::RTree tree = rtree::RTree::Open(
            scenario.disk.get(), &stats_buffer, meta_page);
        scenario.tree_stats = tree.ComputeStats();
      }
      scenario.disk->ResetStats();
      // The map generators are fast and deterministic; re-run them for the
      // dataset/places the query generators need.
      workload::MapParams params =
          options.kind == DatabaseKind::kUsLike
              ? workload::UsLikeParams(options.scale)
              : workload::WorldLikeParams(options.scale);
      if (options.seed != 0) params.seed = options.seed;
      workload::GeneratedMap map = workload::GenerateMap(params);
      scenario.name = params.name;
      scenario.dataset = std::move(map.dataset);
      scenario.places = std::move(map.places);
      return scenario;
    }
  }
  Scenario scenario = BuildScenario(options);
  scenario.disk->SaveImage(path);  // best effort; failures are harmless
  return scenario;
}

size_t DefaultQueryCount(const Scenario& scenario, int ex) {
  // Baseline counts calibrated for a ~6800-page tree so that a query set
  // produces disk accesses roughly 10-20x the largest (4.7%) buffer; scaled
  // with the tree and clamped to sane bounds (Sec. 3.1: for smaller buffers
  // the factor increases automatically).
  double base = 0.0;
  switch (ex) {
    case 0:
      base = 1600;
      break;
    case 1000:
      base = 1200;
      break;
    case 333:
      base = 1000;
      break;
    case 100:
      base = 700;
      break;
    case 33:
      base = 400;
      break;
    default:
      base = 800;
      break;
  }
  const double scale =
      static_cast<double>(scenario.tree_stats.total_pages()) / 6800.0;
  return static_cast<size_t>(
      std::clamp(base * std::max(scale, 0.05), 100.0, 50'000.0));
}

workload::QuerySet StandardQuerySet(const Scenario& scenario,
                                    workload::QueryFamily family, int ex) {
  workload::QuerySpec spec;
  spec.family = family;
  spec.ex = ex;
  spec.count = DefaultQueryCount(scenario, ex);
  // Deterministic but distinct per family/extent.
  spec.seed = 0xC0FFEEull * (static_cast<uint64_t>(family) + 3) +
              static_cast<uint64_t>(ex) * 7919 + 1;
  return workload::MakeQuerySet(spec, scenario.dataset, scenario.places);
}

}  // namespace sdb::sim
