#include "sim/report.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/macros.h"

namespace sdb::sim {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::AddRow(std::vector<std::string> row) {
  SDB_CHECK_MSG(row.size() == rows_.front().size(),
                "row width differs from header");
  rows_.push_back(std::move(row));
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) {
    std::printf("\n== %s ==\n", title.c_str());
  }
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        std::printf("%-*s", static_cast<int>(widths[c]), row[c].c_str());
      } else {
        std::printf("  %*s", static_cast<int>(widths[c]), row[c].c_str());
      }
    }
    std::printf("\n");
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
      }
      for (size_t i = 0; i < total; ++i) std::printf("-");
      std::printf("\n");
    }
  }
  const char* csv = std::getenv("SDB_CSV");
  if (csv != nullptr && csv[0] != '\0') {
    PrintCsv(title);
  }
}

void Table::PrintCsv(const std::string& title) const {
  std::printf("# csv%s%s\n", title.empty() ? "" : ": ", title.c_str());
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      // Quote cells containing separators; the data here never contains
      // quotes themselves.
      const bool quote = row[c].find(',') != std::string::npos;
      std::printf("%s%s%s%s", c == 0 ? "" : ",", quote ? "\"" : "",
                  row[c].c_str(), quote ? "\"" : "");
    }
    std::printf("\n");
  }
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool AppendJsonLine(const std::string& path, const std::string& object) {
  // Truncate on the first append per path so each process run starts a
  // fresh file; guarded because sweeps may report from worker threads.
  static std::mutex mutex;
  static std::set<std::string>* fresh_paths = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mutex);
  const bool truncate = fresh_paths->insert(path).second;
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) return false;
  const bool ok = std::fprintf(file, "%s\n", object.c_str()) > 0;
  return std::fclose(file) == 0 && ok;
}

std::string FormatGain(double gain) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", gain * 100.0);
  return buf;
}

std::string FormatPercent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", value * 100.0);
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sdb::sim
