#include "sim/trace.h"

#include "common/macros.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "obs/collector.h"
#include "rtree/rtree.h"

namespace sdb::sim {

AccessTrace RecordQueryTrace(storage::DiskManager* disk,
                             storage::PageId tree_meta,
                             const workload::QuerySet& queries,
                             size_t buffer_frames,
                             const std::string& policy_spec) {
  SDB_CHECK_MSG(obs::kEnabled,
                "trace recording needs SDB_OBS=ON (it rides on the "
                "observability event stream)");
  std::unique_ptr<core::ReplacementPolicy> policy =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(policy != nullptr, "unknown policy spec");
  // Access-recording collector: every Fetch/New lands in the event ring as
  // one kPageAccess event, in request order. Unbounded ring — a trace is
  // only useful complete.
  obs::CollectorOptions options;
  options.record_accesses = true;
  options.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(options);
  core::BufferManager buffer(disk, buffer_frames, std::move(policy),
                             &collector);
  const rtree::RTree tree = rtree::RTree::Open(disk, &buffer, tree_meta);
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx, [](const rtree::Entry&) {});
  }
  AccessTrace trace;
  trace.name = queries.name;
  trace.accesses.reserve(collector.events().size());
  collector.events().ForEach([&trace](const obs::Event& event) {
    if (event.kind != obs::EventKind::kPageAccess) return;
    trace.accesses.push_back(
        {static_cast<storage::PageId>(event.page), event.query});
  });
  return trace;
}

ReplayResult ReplayTrace(storage::DiskManager* disk, const AccessTrace& trace,
                         const std::string& policy_spec,
                         size_t buffer_frames) {
  std::unique_ptr<core::ReplacementPolicy> policy =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(policy != nullptr, "unknown policy spec");
  core::BufferManager buffer(disk, buffer_frames, std::move(policy));
  ReplayResult result;
  result.policy = std::string(buffer.policy().name());
  disk->ResetStats();
  for (const PageAccess& access : trace.accesses) {
    const core::AccessContext ctx{access.query_id};
    core::PageHandle handle = buffer.FetchOrDie(access.page, ctx);
    handle.Release();
  }
  result.requests = buffer.stats().requests;
  result.disk_reads = disk->stats().reads;
  result.hits = buffer.stats().hits;
  return result;
}

}  // namespace sdb::sim
