#include "sim/trace.h"

#include "common/macros.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"

namespace sdb::sim {

RecordingPolicy::RecordingPolicy(
    std::unique_ptr<core::ReplacementPolicy> inner, AccessTrace* sink)
    : inner_(std::move(inner)), sink_(sink) {
  SDB_CHECK(inner_ != nullptr && sink_ != nullptr);
}

void RecordingPolicy::Bind(const core::FrameMetaSource* meta,
                           size_t frame_count) {
  inner_->Bind(meta, frame_count);
  frame_page_.assign(frame_count, storage::kInvalidPageId);
}

void RecordingPolicy::OnPageLoaded(core::FrameId frame, storage::PageId page,
                                   const core::AccessContext& ctx) {
  frame_page_[frame] = page;
  sink_->accesses.push_back({page, ctx.query_id});
  inner_->OnPageLoaded(frame, page, ctx);
}

void RecordingPolicy::OnPageAccessed(core::FrameId frame,
                                     const core::AccessContext& ctx) {
  sink_->accesses.push_back({frame_page_[frame], ctx.query_id});
  inner_->OnPageAccessed(frame, ctx);
}

void RecordingPolicy::SetEvictable(core::FrameId frame, bool evictable) {
  inner_->SetEvictable(frame, evictable);
}

std::optional<core::FrameId> RecordingPolicy::ChooseVictim(
    const core::AccessContext& ctx, storage::PageId incoming) {
  return inner_->ChooseVictim(ctx, incoming);
}

void RecordingPolicy::OnPageEvicted(core::FrameId frame,
                                    storage::PageId page) {
  frame_page_[frame] = storage::kInvalidPageId;
  inner_->OnPageEvicted(frame, page);
}

AccessTrace RecordQueryTrace(storage::DiskManager* disk,
                             storage::PageId tree_meta,
                             const workload::QuerySet& queries,
                             size_t buffer_frames,
                             const std::string& policy_spec) {
  std::unique_ptr<core::ReplacementPolicy> inner =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(inner != nullptr, "unknown policy spec");
  AccessTrace trace;
  trace.name = queries.name;
  core::BufferManager buffer(
      disk, buffer_frames,
      std::make_unique<RecordingPolicy>(std::move(inner), &trace));
  const rtree::RTree tree = rtree::RTree::Open(disk, &buffer, tree_meta);
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx, [](const rtree::Entry&) {});
  }
  return trace;
}

ReplayResult ReplayTrace(storage::DiskManager* disk, const AccessTrace& trace,
                         const std::string& policy_spec,
                         size_t buffer_frames) {
  std::unique_ptr<core::ReplacementPolicy> policy =
      core::CreatePolicy(policy_spec);
  SDB_CHECK_MSG(policy != nullptr, "unknown policy spec");
  core::BufferManager buffer(disk, buffer_frames, std::move(policy));
  ReplayResult result;
  result.policy = std::string(buffer.policy().name());
  disk->ResetStats();
  for (const PageAccess& access : trace.accesses) {
    const core::AccessContext ctx{access.query_id};
    core::PageHandle handle = buffer.Fetch(access.page, ctx);
    handle.Release();
  }
  result.requests = buffer.stats().requests;
  result.disk_reads = disk->stats().reads;
  result.hits = buffer.stats().hits;
  return result;
}

}  // namespace sdb::sim
