#ifndef SPATIALBUFFER_SIM_TRACE_H_
#define SPATIALBUFFER_SIM_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/buffer_manager.h"
#include "core/replacement_policy.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace sdb::sim {

/// One logical page request, as the buffer pool sees it.
struct PageAccess {
  storage::PageId page = storage::kInvalidPageId;
  uint64_t query_id = 0;
};

/// A recorded page-access trace. Traces decouple workload execution from
/// policy evaluation: record the request stream once, then replay it
/// against any number of policies/buffer sizes — the standard methodology
/// of the buffer-management literature, and much faster than re-running
/// the queries per configuration (query CPU cost is paid once).
struct AccessTrace {
  std::string name;
  std::vector<PageAccess> accesses;
};

/// Policy decorator that records every page request passing through a
/// buffer while delegating all decisions to the wrapped policy. The
/// recorded stream is independent of the wrapped policy (requests are
/// logical), but wrapping the intended policy keeps the run usable.
class RecordingPolicy : public core::ReplacementPolicy {
 public:
  RecordingPolicy(std::unique_ptr<core::ReplacementPolicy> inner,
                  AccessTrace* sink);

  std::string_view name() const override { return inner_->name(); }
  void Bind(const core::FrameMetaSource* meta, size_t frame_count) override;
  void OnPageLoaded(core::FrameId frame, storage::PageId page,
                    const core::AccessContext& ctx) override;
  void OnPageAccessed(core::FrameId frame,
                      const core::AccessContext& ctx) override;
  void SetEvictable(core::FrameId frame, bool evictable) override;
  std::optional<core::FrameId> ChooseVictim(
      const core::AccessContext& ctx, storage::PageId incoming) override;
  void OnPageEvicted(core::FrameId frame, storage::PageId page) override;

 private:
  std::unique_ptr<core::ReplacementPolicy> inner_;
  AccessTrace* sink_;
  std::vector<storage::PageId> frame_page_;  // for hit page-id recovery
};

/// Records the page requests that executing `queries` against the tree
/// issues. The recording buffer uses the given policy (default LRU); the
/// trace itself is policy-independent.
AccessTrace RecordQueryTrace(storage::DiskManager* disk,
                             storage::PageId tree_meta,
                             const workload::QuerySet& queries,
                             size_t buffer_frames,
                             const std::string& policy_spec = "LRU");

/// Result of replaying a trace.
struct ReplayResult {
  std::string policy;
  uint64_t requests = 0;
  uint64_t disk_reads = 0;
  uint64_t hits = 0;
};

/// Replays a trace through a fresh buffer with the given policy: each
/// access is a Fetch+Release with the recorded query id. Disk reads equal
/// what the original workload would have cost under this policy.
ReplayResult ReplayTrace(storage::DiskManager* disk, const AccessTrace& trace,
                         const std::string& policy_spec,
                         size_t buffer_frames);

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_TRACE_H_
