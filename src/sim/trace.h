#ifndef SPATIALBUFFER_SIM_TRACE_H_
#define SPATIALBUFFER_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace sdb::sim {

/// One logical page request, as the buffer pool sees it.
struct PageAccess {
  storage::PageId page = storage::kInvalidPageId;
  uint64_t query_id = 0;
};

/// A recorded page-access trace. Traces decouple workload execution from
/// policy evaluation: record the request stream once, then replay it
/// against any number of policies/buffer sizes — the standard methodology
/// of the buffer-management literature, and much faster than re-running
/// the queries per configuration (query CPU cost is paid once).
struct AccessTrace {
  std::string name;
  std::vector<PageAccess> accesses;
};

/// Records the page requests that executing `queries` against the tree
/// issues. Recording rides on the observability event stream (an obs
/// collector in access-recording mode feeds kPageAccess events, converted
/// here) instead of a policy decorator, so any policy works unchanged; the
/// recording buffer uses the given policy (default LRU), and the trace
/// itself is policy-independent.
AccessTrace RecordQueryTrace(storage::DiskManager* disk,
                             storage::PageId tree_meta,
                             const workload::QuerySet& queries,
                             size_t buffer_frames,
                             const std::string& policy_spec = "LRU");

/// Result of replaying a trace.
struct ReplayResult {
  std::string policy;
  uint64_t requests = 0;
  uint64_t disk_reads = 0;
  uint64_t hits = 0;
};

/// Replays a trace through a fresh buffer with the given policy: each
/// access is a Fetch+Release with the recorded query id. Disk reads equal
/// what the original workload would have cost under this policy.
ReplayResult ReplayTrace(storage::DiskManager* disk, const AccessTrace& trace,
                         const std::string& policy_spec,
                         size_t buffer_frames);

}  // namespace sdb::sim

#endif  // SPATIALBUFFER_SIM_TRACE_H_
