#include "sim/churn.h"

#include <utility>
#include <vector>

#include "common/macros.h"
#include "rtree/node_view.h"

namespace sdb::sim {

namespace {

/// splitmix64: the repo's stock deterministic PRNG.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = (*state += 0x9E3779B97F4A7C15ull);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double NextUnit(uint64_t* state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

}  // namespace

core::StatusOr<ChurnResult> RunChurn(rtree::RTree& tree,
                                     const geom::Rect& space,
                                     const ChurnOptions& options,
                                     const ChurnHooks& hooks,
                                     const core::AccessContext& ctx) {
  SDB_CHECK_MSG(!space.IsEmpty(), "churn needs a non-empty data space");
  uint64_t state = options.seed;
  const double w = space.width() * options.extent_fraction;
  const double h = space.height() * options.extent_fraction;
  std::vector<rtree::Entry> live;
  ChurnResult result;
  for (size_t op = 1; op <= options.operations; ++op) {
    const bool do_delete =
        !live.empty() && NextUnit(&state) < options.delete_fraction;
    if (do_delete) {
      const size_t pick = NextRandom(&state) % live.size();
      const rtree::Entry victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      const bool removed = tree.Delete(victim.id, victim.rect, ctx);
      SDB_CHECK_MSG(removed, "churn delete lost a live entry");
      ++result.deletes;
    } else {
      rtree::Entry entry;
      const double cx = space.xmin + NextUnit(&state) * space.width();
      const double cy = space.ymin + NextUnit(&state) * space.height();
      entry.rect = geom::Rect::Centered({cx, cy}, w, h);
      entry.id = options.first_id + result.inserts;
      tree.Insert(entry, ctx);
      live.push_back(entry);
      ++result.inserts;
    }
    if (options.commit_every != 0 && op % options.commit_every == 0) {
      if (hooks.commit) {
        if (core::Status status = hooks.commit(); !status.ok()) return status;
      }
      ++result.commits;
    }
    if (options.checkpoint_every != 0 && op % options.checkpoint_every == 0) {
      if (hooks.checkpoint) {
        if (core::Status status = hooks.checkpoint(); !status.ok()) {
          return status;
        }
      }
      ++result.checkpoints;
    }
    if (op == options.warmup_operations && hooks.on_steady_state) {
      if (core::Status status = hooks.on_steady_state(); !status.ok()) {
        return status;
      }
    }
  }
  result.live = live.size();
  return result;
}

}  // namespace sdb::sim
