#include "sim/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"

namespace sdb::sim {

namespace {

/// Fenwick (binary indexed) tree over access positions; used to count the
/// number of "most recent occurrences" inside a position interval.
class FenwickTree {
 public:
  explicit FenwickTree(size_t n) : tree_(n + 1, 0) {}

  void Add(size_t index, int delta) {
    for (size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of the first `count` positions [0, count).
  int64_t PrefixSum(size_t count) const {
    int64_t sum = 0;
    for (size_t i = count; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace

TraceProfile AnalyzeTrace(const AccessTrace& trace) {
  TraceProfile profile;
  const size_t n = trace.accesses.size();
  profile.total_accesses = n;
  profile.distances.reserve(n);

  // Mattson stack distances: mark the latest position of every page in the
  // Fenwick tree; the stack distance of an access is the number of marked
  // positions after the page's previous position.
  FenwickTree marks(n);
  std::unordered_map<storage::PageId, size_t> last_position;
  last_position.reserve(1024);

  for (size_t i = 0; i < n; ++i) {
    const storage::PageId page = trace.accesses[i].page;
    const auto it = last_position.find(page);
    uint64_t distance = UINT64_MAX;
    if (it == last_position.end()) {
      ++profile.unique_pages;
    } else {
      const size_t prev = it->second;
      // Marked positions in (prev, i): distinct pages touched in between,
      // excluding this page itself.
      distance = static_cast<uint64_t>(marks.PrefixSum(i) -
                                       marks.PrefixSum(prev + 1)) +
                 1;  // +1: the page itself re-enters the stack top
      marks.Add(prev, -1);
    }
    marks.Add(i, +1);
    last_position[page] = i;
    profile.distances.push_back(distance);

    if (distance != UINT64_MAX) {
      size_t bucket = 0;
      for (uint64_t d = distance; d > 1; d >>= 1) ++bucket;
      if (profile.distance_histogram.size() <= bucket) {
        profile.distance_histogram.resize(bucket + 1, 0);
      }
      ++profile.distance_histogram[bucket];
    }
  }
  return profile;
}

uint64_t TraceProfile::LruMisses(size_t frames) const {
  SDB_CHECK(frames > 0);
  uint64_t misses = 0;
  for (const uint64_t d : distances) {
    if (d == UINT64_MAX || d > frames) ++misses;
  }
  return misses;
}

std::optional<size_t> RecommendBufferSize(const TraceProfile& profile,
                                          double target_hit_rate) {
  SDB_CHECK(target_hit_rate >= 0.0 && target_hit_rate <= 1.0);
  if (profile.total_accesses == 0) return std::nullopt;
  // Hits at size C = #(finite distances <= C): sort the finite distances
  // once, then the smallest sufficient C is the k-th order statistic.
  std::vector<uint64_t> finite;
  finite.reserve(profile.distances.size());
  for (const uint64_t d : profile.distances) {
    if (d != UINT64_MAX) finite.push_back(d);
  }
  const uint64_t needed_hits = static_cast<uint64_t>(
      std::ceil(target_hit_rate *
                static_cast<double>(profile.total_accesses)));
  if (needed_hits == 0) return 1;
  if (needed_hits > finite.size()) return std::nullopt;  // cold misses win
  std::sort(finite.begin(), finite.end());
  return static_cast<size_t>(finite[needed_hits - 1]);
}

double TraceProfile::LocalityAt(size_t frames) const {
  if (total_accesses == 0) return 0.0;
  return 1.0 - static_cast<double>(LruMisses(frames)) /
                   static_cast<double>(total_accesses);
}

}  // namespace sdb::sim
