// Buffer observer: runs a workload that drifts from hot-spot traffic to
// uniform scans with an observability collector attached, streams the
// windowed hit ratio and ASB adaptation activity while the replay
// progresses, and finishes with the full metrics snapshot — the quickstart
// for the obs subsystem.
//
//   ./examples/buffer_observer [metrics.jsonl]
//
// With a path argument the final snapshot is also written as JSON-Lines
// (one {"label":...,"metric":...,"value":...} record per metric).

#include <cstdio>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "obs/export.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace sdb;

  if (!obs::kEnabled) {
    std::fprintf(stderr,
                 "built with SDB_OBS=OFF — nothing to observe; reconfigure "
                 "with -DSDB_OBS=ON\n");
    return 1;
  }

  sim::ScenarioOptions options;
  options.kind = sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kBulkLoad;
  options.scale = 0.25;
  const sim::Scenario scenario = sim::BuildScenario(options);

  const workload::QuerySet hot = sim::StandardQuerySet(
      scenario, workload::QueryFamily::kIntensified, 33);
  const workload::QuerySet scan =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 33);
  const workload::QuerySet mixed = workload::ConcatQuerySets({hot, scan});

  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  collect.window = 256;
  obs::Collector collector(collect);
  sim::RunOptions run;
  run.buffer_frames = scenario.BufferFrames(0.047);
  run.collector = &collector;
  const sim::RunResult result = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "ASB", mixed, run);

  std::printf("workload: %s (%zu queries), ASB over %zu frames\n\n",
              mixed.name.c_str(), mixed.queries.size(), run.buffer_frames);

  // Replay the event stream as a per-phase activity report: the candidate
  // trace tells us where the buffer was at every query, the adaptation
  // events how hard it was steering.
  const std::vector<size_t> trace =
      sim::AsbCandidateTrace(collector.events(), mixed.queries.size());
  const size_t phase_end = hot.queries.size();
  size_t down = 0, up = 0;
  collector.events().ForEach([&](const obs::Event& event) {
    if (event.kind != obs::EventKind::kAsbAdapt) return;
    if (event.delta < 0) ++down;
    if (event.delta > 0) ++up;
  });
  std::printf("adaptation: %zu shrink events, %zu grow events\n", down, up);
  if (!trace.empty()) {
    std::printf("candidate set: start %zu, after hot phase %zu, end %zu\n",
                trace.front(), trace[phase_end - 1], trace.back());
  }
  std::printf("hit ratio: %.1f%% overall (%llu of %llu requests)\n\n",
              100.0 * static_cast<double>(result.buffer_hits) /
                  static_cast<double>(result.buffer_requests),
              static_cast<unsigned long long>(result.buffer_hits),
              static_cast<unsigned long long>(result.buffer_requests));

  // The full snapshot: everything the buffer, policy and device recorded.
  std::printf("metrics snapshot:\n");
  for (const obs::MetricValue& metric : result.metrics) {
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        std::printf("  %-32s %llu\n", metric.name.c_str(),
                    static_cast<unsigned long long>(metric.count));
        break;
      case obs::MetricKind::kGauge:
        std::printf("  %-32s %.3f\n", metric.name.c_str(), metric.value);
        break;
      case obs::MetricKind::kHistogram:
        std::printf("  %-32s n=%llu mean=%.2f\n", metric.name.c_str(),
                    static_cast<unsigned long long>(metric.observations),
                    metric.observations == 0
                        ? 0.0
                        : metric.value /
                              static_cast<double>(metric.observations));
        break;
    }
  }

  if (argc > 1) {
    const std::string path = argv[1];
    if (obs::WriteMetricsJsonLines(path, "buffer_observer", result.metrics)) {
      std::printf("\nmetrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "\ncould not write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
