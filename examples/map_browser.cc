// Map browser: simulates an interactive map session — a user panning and
// zooming over a clustered map, occasionally jumping to a hot city — and
// compares the disk reads of LRU, LRU-2, pure spatial A, and ASB for the
// same session. This is the kind of mixed locality (smooth pans = spatial
// locality, jumps to hot spots = temporal locality) the adaptable spatial
// buffer is designed for.
//
//   ./examples/map_browser

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"
#include "sim/scenario.h"
#include "workload/session_generator.h"

using namespace sdb;

int main() {
  sim::ScenarioOptions options;
  options.kind = sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kInsert;
  options.scale = 0.25;
  const sim::Scenario scenario = sim::BuildScenario(options);
  std::printf("map: %llu features, tree: %u pages, height %u\n",
              static_cast<unsigned long long>(
                  scenario.tree_stats.object_count),
              scenario.tree_stats.total_pages(), scenario.tree_stats.height);

  workload::SessionParams params;
  params.steps = 3000;
  params.seed = 2024;
  const workload::QuerySet session =
      workload::MakeSessionQuerySet(params, scenario.places);
  std::printf("session: %zu viewport requests (pan/zoom/jump)\n\n",
              session.queries.size());

  const size_t frames = scenario.BufferFrames(0.02);
  uint64_t lru_reads = 0;
  for (const std::string policy : {"LRU", "LRU-2", "A", "ASB"}) {
    core::BufferManager buffer(scenario.disk.get(), frames,
                               core::CreatePolicy(policy));
    const rtree::RTree tree = rtree::RTree::Open(
        scenario.disk.get(), &buffer, scenario.tree_meta);
    scenario.disk->ResetStats();
    uint64_t tiles = 0;
    uint64_t query_id = 0;
    for (const geom::Rect& viewport : session.queries) {
      tree.WindowQueryVisit(viewport, core::AccessContext{++query_id},
                            [&tiles](const rtree::Entry&) { ++tiles; });
    }
    const uint64_t reads = scenario.disk->stats().reads;
    if (lru_reads == 0) lru_reads = reads;
    std::printf(
        "%-6s: %8llu disk reads  (%+5.1f%% vs LRU), hit rate %.1f%%, "
        "%llu features rendered\n",
        policy.c_str(), static_cast<unsigned long long>(reads),
        100.0 * (static_cast<double>(lru_reads) / reads - 1.0),
        100.0 * buffer.stats().HitRate(),
        static_cast<unsigned long long>(tiles));
  }
  return 0;
}
