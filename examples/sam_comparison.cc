// SAM comparison: indexes the same point features in all three spatial
// access methods of this library — R*-tree, z-order B+-tree and bucket PR
// quadtree — and runs the same window-query workload through identical
// ASB-managed buffers, comparing page counts and I/O. Illustrates the
// paper's remark that the spatial replacement criteria are defined for any
// SAM whose page entries carry MBRs (R-tree rectangles, z-value cells,
// quadtree cells).
//
//   ./examples/sam_comparison

#include <cstdio>
#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "sim/report.h"
#include "storage/disk_manager.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "zbtree/zbtree.h"

namespace {

using namespace sdb;

struct IoResult {
  uint32_t pages;
  uint64_t reads;
  double hit_rate;
  uint64_t results;
};

template <typename BuildFn, typename QueryFn>
IoResult Measure(const workload::QuerySet& queries, size_t buffer_fraction_of,
                 BuildFn build, QueryFn query) {
  storage::DiskManager disk;
  uint32_t pages = 0;
  storage::PageId meta = 0;
  {
    core::BufferManager buffer(&disk, 1u << 15, core::CreatePolicy("LRU"));
    meta = build(&disk, &buffer, &pages);
    buffer.FlushAll();
  }
  const size_t frames = std::max<size_t>(8, pages / buffer_fraction_of);
  core::BufferManager buffer(&disk, frames, core::CreatePolicy("ASB"));
  disk.ResetStats();
  uint64_t results = 0;
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    results += query(&disk, &buffer, meta, window,
                     core::AccessContext{++query_id});
  }
  return {pages, disk.stats().reads, buffer.stats().HitRate(), results};
}

}  // namespace

int main() {
  const workload::GeneratedMap map =
      workload::GenerateMap(workload::UsLikeParams(/*scale=*/0.25));
  workload::QuerySpec spec;
  spec.family = workload::QueryFamily::kSimilar;
  spec.ex = 100;
  spec.count = 800;
  spec.seed = 12;
  const workload::QuerySet queries =
      workload::MakeQuerySet(spec, map.dataset, map.places);
  std::printf("%zu features, %zu window queries (%s), ASB buffers (~2%%)\n",
              map.dataset.objects.size(), queries.queries.size(),
              queries.name.c_str());

  // All three SAMs index the object centers (points), for comparability.
  const IoResult rtree_result = Measure(
      queries, 50,
      [&](storage::DiskManager* disk, core::BufferManager* buffer,
          uint32_t* pages) {
        rtree::RTree tree(disk, buffer);
        for (const workload::SpatialObject& object : map.dataset.objects) {
          rtree::Entry e;
          e.id = object.id;
          e.rect = geom::Rect::FromPoint(object.rect.Center());
          tree.Insert(e, core::AccessContext{});
        }
        tree.PersistMeta();
        *pages = tree.ComputeStats().total_pages();
        return tree.meta_page();
      },
      [](storage::DiskManager* disk, core::BufferManager* buffer,
         storage::PageId meta, const geom::Rect& window,
         const core::AccessContext& ctx) {
        const rtree::RTree tree = rtree::RTree::Open(disk, buffer, meta);
        uint64_t n = 0;
        tree.WindowQueryVisit(window, ctx,
                              [&n](const rtree::Entry&) { ++n; });
        return n;
      });

  const IoResult zbtree_result = Measure(
      queries, 50,
      [&](storage::DiskManager* disk, core::BufferManager* buffer,
          uint32_t* pages) {
        zbtree::ZBTree tree(disk, buffer);
        for (const workload::SpatialObject& object : map.dataset.objects) {
          tree.Insert(object.rect.Center(), object.id,
                      core::AccessContext{});
        }
        tree.PersistMeta();
        *pages = tree.ComputeStats().total_pages();
        return tree.meta_page();
      },
      [](storage::DiskManager* disk, core::BufferManager* buffer,
         storage::PageId meta, const geom::Rect& window,
         const core::AccessContext& ctx) {
        const zbtree::ZBTree tree = zbtree::ZBTree::Open(disk, buffer, meta);
        uint64_t n = 0;
        tree.WindowQueryVisit(window, ctx,
                              [&n](const zbtree::ZPoint&) { ++n; });
        return n;
      });

  const IoResult quad_result = Measure(
      queries, 50,
      [&](storage::DiskManager* disk, core::BufferManager* buffer,
          uint32_t* pages) {
        quadtree::QuadTree tree(disk, buffer);
        for (const workload::SpatialObject& object : map.dataset.objects) {
          tree.Insert(object.rect.Center(), object.id,
                      core::AccessContext{});
        }
        tree.PersistMeta();
        *pages = tree.ComputeStats().total_pages();
        return tree.meta_page();
      },
      [](storage::DiskManager* disk, core::BufferManager* buffer,
         storage::PageId meta, const geom::Rect& window,
         const core::AccessContext& ctx) {
        const quadtree::QuadTree tree =
            quadtree::QuadTree::Open(disk, buffer, meta);
        uint64_t n = 0;
        tree.WindowQueryVisit(window, ctx,
                              [&n](const quadtree::QuadPoint&) { ++n; });
        return n;
      });

  sim::Table table({"SAM", "pages", "disk reads", "hit rate", "results"});
  table.AddRow({"R*-tree", std::to_string(rtree_result.pages),
                std::to_string(rtree_result.reads),
                sim::FormatPercent(rtree_result.hit_rate),
                std::to_string(rtree_result.results)});
  table.AddRow({"z-B+-tree", std::to_string(zbtree_result.pages),
                std::to_string(zbtree_result.reads),
                sim::FormatPercent(zbtree_result.hit_rate),
                std::to_string(zbtree_result.results)});
  table.AddRow({"quadtree", std::to_string(quad_result.pages),
                std::to_string(quad_result.reads),
                sim::FormatPercent(quad_result.hit_rate),
                std::to_string(quad_result.results)});
  table.Print("three SAMs, same workload, same ASB buffer");

  if (rtree_result.results == zbtree_result.results &&
      zbtree_result.results == quad_result.results) {
    std::printf("\nall three access methods returned identical results.\n");
  } else {
    std::printf("\nWARNING: result mismatch between the access methods!\n");
  }
  return 0;
}
