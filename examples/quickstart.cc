// Quickstart: index a small synthetic map with the paged R*-tree, run
// window queries through the self-tuning adaptable spatial buffer (ASB),
// and inspect the I/O counters.
//
//   ./examples/quickstart

#include <cstdio>
#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_asb.h"
#include "core/policy_lru.h"
#include "rtree/rtree.h"
#include "storage/disk_manager.h"
#include "workload/data_generator.h"

int main() {
  using namespace sdb;

  // 1. A simulated disk file and a generous buffer for building.
  storage::DiskManager disk;
  auto build_buffer = std::make_unique<core::BufferManager>(
      &disk, 4096, std::make_unique<core::LruPolicy>());

  // 2. Generate a clustered map (10k objects) and index it.
  workload::MapParams params = workload::UsLikeParams(/*scale=*/0.05);
  const workload::GeneratedMap map = workload::GenerateMap(params);
  rtree::RTree tree(&disk, build_buffer.get());
  for (const workload::SpatialObject& object : map.dataset.objects) {
    rtree::Entry entry;
    entry.id = object.id;
    entry.rect = object.rect;
    tree.Insert(entry, core::AccessContext{});
  }
  tree.PersistMeta();
  build_buffer->FlushAll();
  tree.set_buffer(nullptr);  // the tree must not point at a dead buffer
  build_buffer.reset();      // everything is on "disk" now

  const rtree::TreeStats stats = tree.ComputeStats();
  std::printf("indexed %llu objects: %u pages (%u directory), height %u\n",
              static_cast<unsigned long long>(stats.object_count),
              stats.total_pages(), stats.directory_pages, stats.height);

  // 3. Query through a small ASB-managed buffer (2% of the tree).
  core::BufferManager buffer(&disk, stats.total_pages() / 50,
                             std::make_unique<core::AsbPolicy>());
  tree.set_buffer(&buffer);
  disk.ResetStats();

  uint64_t results = 0;
  uint64_t query_id = 0;
  for (int i = 0; i < 500; ++i) {
    const double cx = 0.1 + 0.8 * (i % 25) / 25.0;
    const double cy = 0.1 + 0.8 * (i / 25 % 20) / 20.0;
    const geom::Rect window =
        geom::Rect::Centered({cx, cy}, 1.0 / 33, 1.0 / 33);
    const core::AccessContext ctx{++query_id};
    results += tree.WindowQuery(window, ctx).size();
  }

  std::printf("500 window queries -> %llu results\n",
              static_cast<unsigned long long>(results));
  std::printf("buffer: %zu frames, %llu requests, hit rate %.1f%%\n",
              buffer.frame_count(),
              static_cast<unsigned long long>(buffer.stats().requests),
              100.0 * buffer.stats().HitRate());
  std::printf("disk reads: %llu (the paper's cost metric)\n",
              static_cast<unsigned long long>(disk.stats().reads));
  return 0;
}
