// Policy lab: a small CLI to run any replacement policy against any query
// distribution on either database and print the resulting I/O cost — handy
// for exploring the design space beyond the canned figures.
//
//   ./examples/policy_lab [policy] [family] [ex] [buffer%] [db]
//   ./examples/policy_lab ASB INT 33 4.7 us
//   ./examples/policy_lab SLRU:A:0.5 U 0 0.6 world
//
// Defaults: compare ALL predefined policies on U-W-100, 4.7% buffer, us.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace {

using namespace sdb;

workload::QueryFamily ParseFamily(const std::string& name) {
  if (name == "U") return workload::QueryFamily::kUniform;
  if (name == "ID") return workload::QueryFamily::kIdentical;
  if (name == "S") return workload::QueryFamily::kSimilar;
  if (name == "INT") return workload::QueryFamily::kIntensified;
  if (name == "IND") return workload::QueryFamily::kIndependent;
  std::fprintf(stderr, "unknown family '%s' (use U|ID|S|INT|IND)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> policies;
  if (argc > 1) {
    policies.push_back(argv[1]);
    if (core::CreatePolicy(argv[1]) == nullptr) {
      std::fprintf(stderr, "unknown policy '%s'; known specs:\n", argv[1]);
      for (const std::string& spec : core::KnownPolicySpecs()) {
        std::fprintf(stderr, "  %s\n", spec.c_str());
      }
      return 1;
    }
    if (policies[0] != "LRU") policies.insert(policies.begin(), "LRU");
  } else {
    policies = core::KnownPolicySpecs();
  }
  const workload::QueryFamily family =
      argc > 2 ? ParseFamily(argv[2]) : workload::QueryFamily::kUniform;
  const int ex = argc > 3 ? std::atoi(argv[3]) : 100;
  const double buffer_pct = argc > 4 ? std::atof(argv[4]) : 4.7;
  const bool world = argc > 5 && std::strcmp(argv[5], "world") == 0;

  sim::ScenarioOptions options;
  options.kind =
      world ? sim::DatabaseKind::kWorldLike : sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kInsert;
  options.scale = 0.25 * sim::DefaultScale();
  std::printf("building %s database...\n", world ? "world-like" : "us-like");
  const sim::Scenario scenario = sim::BuildScenario(options);

  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, family, ex);
  sim::RunOptions run;
  run.buffer_frames = scenario.BufferFrames(buffer_pct / 100.0);
  std::printf("query set %s (%zu queries), buffer %zu frames (%.1f%%)\n",
              queries.name.c_str(), queries.queries.size(),
              run.buffer_frames, buffer_pct);

  sim::Table table(
      {"policy", "disk reads", "hit rate", "gain vs LRU", "results"});
  sim::RunResult baseline;
  for (const std::string& policy : policies) {
    const sim::RunResult result = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, policy, queries, run);
    if (baseline.disk_reads == 0) baseline = result;
    table.AddRow({result.policy, std::to_string(result.disk_reads),
                  sim::FormatPercent(result.hit_rate()),
                  sim::FormatGain(sim::GainVersus(baseline, result)),
                  std::to_string(result.result_objects)});
  }
  table.Print("policy lab");
  return 0;
}
