// Exact-geometry pipeline: the full two-step spatial query of the paper's
// architecture (filter on the R*-tree, refine on the object pages). Object
// geometries live in their own file and their own buffer, exactly as in the
// paper's setup; the example reports filter hits vs. refined hits and the
// I/O split between the tree file and the object file.
//
//   ./examples/exact_geometry

#include <cstdio>
#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "objstore/object_store.h"
#include "rtree/rtree.h"
#include "storage/disk_manager.h"
#include "workload/data_generator.h"

int main() {
  using namespace sdb;

  // Separate files (disks) for the tree and the exact geometries.
  storage::DiskManager tree_disk;
  storage::DiskManager object_disk;

  core::BufferManager build_tree_buffer(&tree_disk, 4096,
                                        core::CreatePolicy("LRU"));
  core::BufferManager build_object_buffer(&object_disk, 256,
                                          core::CreatePolicy("LRU"));
  rtree::RTree tree(&tree_disk, &build_tree_buffer);
  objstore::ObjectStore store(&object_disk, &build_object_buffer);

  // Load a clustered map; store each exact geometry and index its MBR with
  // a back-reference into the object store.
  const workload::GeneratedMap map =
      workload::GenerateMap(workload::UsLikeParams(/*scale=*/0.05));
  for (const workload::SpatialObject& object : map.dataset.objects) {
    objstore::ExactObject exact;
    exact.id = object.id;
    exact.mbr = object.rect;
    exact.vertices = object.vertices;
    const rtree::ObjectRef ref = store.Append(exact, core::AccessContext{});
    rtree::Entry entry;
    entry.id = object.id;
    entry.rect = object.rect;
    entry.ref = ref;
    tree.Insert(entry, core::AccessContext{});
  }
  tree.PersistMeta();
  build_tree_buffer.FlushAll();
  build_object_buffer.FlushAll();
  std::printf("tree file: %zu pages, object file: %zu pages\n",
              tree_disk.page_count(), object_disk.page_count());

  // Query buffers: the tree buffer uses the adaptable spatial buffer; the
  // object buffer is a plain LRU (as in the paper, object pages are
  // buffered separately and only the tree accesses are compared).
  core::BufferManager tree_buffer(&tree_disk, 64,
                                  core::CreatePolicy("ASB"));
  core::BufferManager object_buffer(&object_disk, 64,
                                    core::CreatePolicy("LRU"));
  tree.set_buffer(&tree_buffer);
  store.set_buffer(&object_buffer);
  tree_disk.ResetStats();
  object_disk.ResetStats();

  uint64_t filter_hits = 0, refined_hits = 0, query_id = 0;
  for (int i = 0; i < 300; ++i) {
    const double cx = 0.05 + 0.9 * ((i * 37) % 100) / 100.0;
    const double cy = 0.05 + 0.9 * ((i * 59) % 100) / 100.0;
    const geom::Rect window =
        geom::Rect::Centered({cx, cy}, 1.0 / 100, 1.0 / 100);
    const core::AccessContext ctx{++query_id};
    // Filter step: candidates from the R*-tree (MBR test).
    for (const rtree::Entry& candidate : tree.WindowQuery(window, ctx)) {
      ++filter_hits;
      // Refinement step: exact geometry vs. window.
      if (store.RefineWindow(candidate.ref, window, ctx)) {
        ++refined_hits;
      }
    }
  }

  std::printf("300 window queries\n");
  std::printf("  filter candidates : %llu\n",
              static_cast<unsigned long long>(filter_hits));
  std::printf("  exact matches     : %llu (%.1f%% of candidates)\n",
              static_cast<unsigned long long>(refined_hits),
              filter_hits ? 100.0 * refined_hits / filter_hits : 0.0);
  std::printf("  tree-file reads   : %llu (ASB buffer, hit rate %.1f%%)\n",
              static_cast<unsigned long long>(tree_disk.stats().reads),
              100.0 * tree_buffer.stats().HitRate());
  std::printf("  object-file reads : %llu (LRU buffer, hit rate %.1f%%)\n",
              static_cast<unsigned long long>(object_disk.stats().reads),
              100.0 * object_buffer.stats().HitRate());
  return 0;
}
