// Adaptive-buffer demo: drives the ASB through a workload that changes
// character mid-stream (hot-spot traffic -> uniform scans -> hot-spot
// traffic) and renders the candidate-set size as an ASCII chart, making the
// self-tuning loop of the paper's Sec. 4.2 visible.
//
//   ./examples/adaptive_buffer_demo

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/collector.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

int main() {
  using namespace sdb;

  sim::ScenarioOptions options;
  options.kind = sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kBulkLoad;
  options.scale = 0.25;
  const sim::Scenario scenario = sim::BuildScenario(options);

  const workload::QuerySet hot1 = sim::StandardQuerySet(
      scenario, workload::QueryFamily::kIntensified, 33);
  const workload::QuerySet scan =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 33);
  const workload::QuerySet hot2 = sim::StandardQuerySet(
      scenario, workload::QueryFamily::kIntensified, 100);
  const workload::QuerySet mixed =
      workload::ConcatQuerySets({hot1, scan, hot2});

  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(collect);
  sim::RunOptions run;
  run.buffer_frames = scenario.BufferFrames(0.047);
  run.collector = &collector;
  const sim::RunResult result = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "ASB", mixed, run);

  const std::vector<size_t> trace =
      sim::AsbCandidateTrace(collector.events(), mixed.queries.size());
  const size_t max_c = *std::max_element(trace.begin(), trace.end());
  std::printf("workload: %s (%zu queries), buffer %zu frames\n",
              mixed.name.c_str(), trace.size(), run.buffer_frames);
  std::printf("candidate-set size over time (each row = %zu queries):\n\n",
              std::max<size_t>(1, trace.size() / 40));

  const size_t rows = 40;
  const size_t step = std::max<size_t>(1, trace.size() / rows);
  const size_t p1 = hot1.queries.size();
  const size_t p2 = p1 + scan.queries.size();
  for (size_t i = 0; i < trace.size(); i += step) {
    const size_t bar =
        (trace[i] * 60 + max_c - 1) / std::max<size_t>(1, max_c);
    const char* phase = i < p1 ? "hot " : (i < p2 ? "scan" : "hot ");
    std::printf("%6zu %s c=%4zu |", i, phase, trace[i]);
    for (size_t b = 0; b < bar; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf(
      "\nLRU dominates during hot-spot phases (small c); the spatial\n"
      "criterion dominates during uniform scans (large c). No manual\n"
      "tuning: the overflow buffer supplies the feedback.\n");
  return 0;
}
