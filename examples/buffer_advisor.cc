// Buffer advisor: record the page-access trace of a workload once, then
// answer sizing questions analytically — the exact LRU miss curve for every
// buffer size from one pass (Mattson stack distances), and the smallest
// buffer reaching a target hit rate. Finally cross-checks the analysis
// against real replays and shows how much of the remaining gap the
// adaptable spatial buffer closes.
//
//   ./examples/buffer_advisor [target-hit-rate]
//   ./examples/buffer_advisor 0.85

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/trace.h"
#include "sim/trace_analysis.h"

int main(int argc, char** argv) {
  using namespace sdb;
  const double target = argc > 1 ? std::atof(argv[1]) : 0.5;

  sim::ScenarioOptions options;
  options.kind = sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kBulkLoad;
  options.scale = 0.25;
  const sim::Scenario scenario = sim::BuildScenario(options);

  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kSimilar, 100);
  const sim::AccessTrace trace = sim::RecordQueryTrace(
      scenario.disk.get(), scenario.tree_meta, queries, 256);
  const sim::TraceProfile profile = sim::AnalyzeTrace(trace);

  std::printf("workload %s: %llu page requests, %llu distinct pages\n\n",
              trace.name.c_str(),
              static_cast<unsigned long long>(profile.total_accesses),
              static_cast<unsigned long long>(profile.unique_pages));

  std::printf("stack-distance histogram (reuse depth, share of accesses):\n");
  for (size_t b = 0; b < profile.distance_histogram.size(); ++b) {
    const double share = 100.0 *
                         static_cast<double>(profile.distance_histogram[b]) /
                         static_cast<double>(profile.total_accesses);
    std::printf("  depth %6llu..%-6llu %5.1f%% ",
                static_cast<unsigned long long>(1ull << b),
                static_cast<unsigned long long>((2ull << b) - 1), share);
    for (int i = 0; i < static_cast<int>(share); ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf("\npredicted LRU hit rate by buffer size:\n");
  for (const size_t frames : {8, 16, 32, 64, 128, 256, 512}) {
    std::printf("  %4zu frames: %5.1f%%\n", frames,
                100.0 * profile.LocalityAt(frames));
  }

  const auto recommended = sim::RecommendBufferSize(profile, target);
  if (recommended) {
    std::printf("\nsmallest buffer for a %.0f%% hit rate: %zu frames "
                "(%.1f%% of the tree)\n",
                100.0 * target, *recommended,
                100.0 * static_cast<double>(*recommended) /
                    scenario.tree_stats.total_pages());
    // Cross-check: replay at the recommended size.
    const sim::ReplayResult lru = sim::ReplayTrace(
        scenario.disk.get(), trace, "LRU", *recommended);
    const sim::ReplayResult asb = sim::ReplayTrace(
        scenario.disk.get(), trace, "ASB", *recommended);
    std::printf("replayed at %zu frames: LRU hit rate %.1f%% (predicted "
                "%.1f%%), ASB %.1f%%\n",
                *recommended,
                100.0 * static_cast<double>(lru.hits) / lru.requests,
                100.0 * profile.LocalityAt(*recommended),
                100.0 * static_cast<double>(asb.hits) / asb.requests);
  } else {
    std::printf("\nno buffer size reaches a %.0f%% hit rate: first-touch "
                "misses alone exceed the budget.\n",
                100.0 * target);
  }
  return 0;
}
