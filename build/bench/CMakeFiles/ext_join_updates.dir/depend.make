# Empty dependencies file for ext_join_updates.
# This may be replaced when dependencies are built.
