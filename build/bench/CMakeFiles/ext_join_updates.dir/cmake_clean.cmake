file(REMOVE_RECURSE
  "CMakeFiles/ext_join_updates.dir/ext_join_updates.cc.o"
  "CMakeFiles/ext_join_updates.dir/ext_join_updates.cc.o.d"
  "ext_join_updates"
  "ext_join_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_join_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
