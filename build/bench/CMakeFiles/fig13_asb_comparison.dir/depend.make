# Empty dependencies file for fig13_asb_comparison.
# This may be replaced when dependencies are built.
