file(REMOVE_RECURSE
  "CMakeFiles/fig05_lru_k.dir/fig05_lru_k.cc.o"
  "CMakeFiles/fig05_lru_k.dir/fig05_lru_k.cc.o.d"
  "fig05_lru_k"
  "fig05_lru_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_lru_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
