# Empty compiler generated dependencies file for fig05_lru_k.
# This may be replaced when dependencies are built.
