# Empty dependencies file for ext_object_pages.
# This may be replaced when dependencies are built.
