file(REMOVE_RECURSE
  "CMakeFiles/ext_object_pages.dir/ext_object_pages.cc.o"
  "CMakeFiles/ext_object_pages.dir/ext_object_pages.cc.o.d"
  "ext_object_pages"
  "ext_object_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_object_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
