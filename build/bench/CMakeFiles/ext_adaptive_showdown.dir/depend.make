# Empty dependencies file for ext_adaptive_showdown.
# This may be replaced when dependencies are built.
