file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_showdown.dir/ext_adaptive_showdown.cc.o"
  "CMakeFiles/ext_adaptive_showdown.dir/ext_adaptive_showdown.cc.o.d"
  "ext_adaptive_showdown"
  "ext_adaptive_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
