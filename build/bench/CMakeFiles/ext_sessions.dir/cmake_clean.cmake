file(REMOVE_RECURSE
  "CMakeFiles/ext_sessions.dir/ext_sessions.cc.o"
  "CMakeFiles/ext_sessions.dir/ext_sessions.cc.o.d"
  "ext_sessions"
  "ext_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
