file(REMOVE_RECURSE
  "CMakeFiles/ablation_io_model.dir/ablation_io_model.cc.o"
  "CMakeFiles/ablation_io_model.dir/ablation_io_model.cc.o.d"
  "ablation_io_model"
  "ablation_io_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_io_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
