# Empty compiler generated dependencies file for ablation_io_model.
# This may be replaced when dependencies are built.
