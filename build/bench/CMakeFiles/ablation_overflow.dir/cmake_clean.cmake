file(REMOVE_RECURSE
  "CMakeFiles/ablation_overflow.dir/ablation_overflow.cc.o"
  "CMakeFiles/ablation_overflow.dir/ablation_overflow.cc.o.d"
  "ablation_overflow"
  "ablation_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
