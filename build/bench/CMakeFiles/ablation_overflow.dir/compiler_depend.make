# Empty compiler generated dependencies file for ablation_overflow.
# This may be replaced when dependencies are built.
