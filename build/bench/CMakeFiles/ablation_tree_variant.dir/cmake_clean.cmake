file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_variant.dir/ablation_tree_variant.cc.o"
  "CMakeFiles/ablation_tree_variant.dir/ablation_tree_variant.cc.o.d"
  "ablation_tree_variant"
  "ablation_tree_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
