# Empty compiler generated dependencies file for ablation_tree_variant.
# This may be replaced when dependencies are built.
