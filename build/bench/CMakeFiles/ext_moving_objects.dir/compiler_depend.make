# Empty compiler generated dependencies file for ext_moving_objects.
# This may be replaced when dependencies are built.
