file(REMOVE_RECURSE
  "CMakeFiles/ext_moving_objects.dir/ext_moving_objects.cc.o"
  "CMakeFiles/ext_moving_objects.dir/ext_moving_objects.cc.o.d"
  "ext_moving_objects"
  "ext_moving_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_moving_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
