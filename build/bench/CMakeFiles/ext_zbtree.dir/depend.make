# Empty dependencies file for ext_zbtree.
# This may be replaced when dependencies are built.
