file(REMOVE_RECURSE
  "CMakeFiles/ext_zbtree.dir/ext_zbtree.cc.o"
  "CMakeFiles/ext_zbtree.dir/ext_zbtree.cc.o.d"
  "ext_zbtree"
  "ext_zbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
