file(REMOVE_RECURSE
  "CMakeFiles/fig08_identical_similar.dir/fig08_identical_similar.cc.o"
  "CMakeFiles/fig08_identical_similar.dir/fig08_identical_similar.cc.o.d"
  "fig08_identical_similar"
  "fig08_identical_similar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_identical_similar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
