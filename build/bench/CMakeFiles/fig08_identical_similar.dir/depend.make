# Empty dependencies file for fig08_identical_similar.
# This may be replaced when dependencies are built.
