file(REMOVE_RECURSE
  "CMakeFiles/fig14_candidate_trace.dir/fig14_candidate_trace.cc.o"
  "CMakeFiles/fig14_candidate_trace.dir/fig14_candidate_trace.cc.o.d"
  "fig14_candidate_trace"
  "fig14_candidate_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_candidate_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
