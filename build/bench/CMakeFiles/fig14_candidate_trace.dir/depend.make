# Empty dependencies file for fig14_candidate_trace.
# This may be replaced when dependencies are built.
