file(REMOVE_RECURSE
  "CMakeFiles/ext_memory_overhead.dir/ext_memory_overhead.cc.o"
  "CMakeFiles/ext_memory_overhead.dir/ext_memory_overhead.cc.o.d"
  "ext_memory_overhead"
  "ext_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
