# Empty compiler generated dependencies file for ext_memory_overhead.
# This may be replaced when dependencies are built.
