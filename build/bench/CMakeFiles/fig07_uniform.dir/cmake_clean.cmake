file(REMOVE_RECURSE
  "CMakeFiles/fig07_uniform.dir/fig07_uniform.cc.o"
  "CMakeFiles/fig07_uniform.dir/fig07_uniform.cc.o.d"
  "fig07_uniform"
  "fig07_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
