# Empty dependencies file for fig07_uniform.
# This may be replaced when dependencies are built.
