# Empty compiler generated dependencies file for ext_quadtree.
# This may be replaced when dependencies are built.
