file(REMOVE_RECURSE
  "CMakeFiles/ext_quadtree.dir/ext_quadtree.cc.o"
  "CMakeFiles/ext_quadtree.dir/ext_quadtree.cc.o.d"
  "ext_quadtree"
  "ext_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
