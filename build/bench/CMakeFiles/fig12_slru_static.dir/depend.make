# Empty dependencies file for fig12_slru_static.
# This may be replaced when dependencies are built.
