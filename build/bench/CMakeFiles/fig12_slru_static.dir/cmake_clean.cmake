file(REMOVE_RECURSE
  "CMakeFiles/fig12_slru_static.dir/fig12_slru_static.cc.o"
  "CMakeFiles/fig12_slru_static.dir/fig12_slru_static.cc.o.d"
  "fig12_slru_static"
  "fig12_slru_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_slru_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
