file(REMOVE_RECURSE
  "CMakeFiles/fig09_independent_intensified.dir/fig09_independent_intensified.cc.o"
  "CMakeFiles/fig09_independent_intensified.dir/fig09_independent_intensified.cc.o.d"
  "fig09_independent_intensified"
  "fig09_independent_intensified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_independent_intensified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
