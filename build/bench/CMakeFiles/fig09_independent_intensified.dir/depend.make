# Empty dependencies file for fig09_independent_intensified.
# This may be replaced when dependencies are built.
