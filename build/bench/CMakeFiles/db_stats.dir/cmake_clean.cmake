file(REMOVE_RECURSE
  "CMakeFiles/db_stats.dir/db_stats.cc.o"
  "CMakeFiles/db_stats.dir/db_stats.cc.o.d"
  "db_stats"
  "db_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
