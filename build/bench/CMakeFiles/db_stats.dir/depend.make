# Empty dependencies file for db_stats.
# This may be replaced when dependencies are built.
