# Empty compiler generated dependencies file for fig06_spatial_variants.
# This may be replaced when dependencies are built.
