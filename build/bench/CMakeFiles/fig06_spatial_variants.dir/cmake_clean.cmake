file(REMOVE_RECURSE
  "CMakeFiles/fig06_spatial_variants.dir/fig06_spatial_variants.cc.o"
  "CMakeFiles/fig06_spatial_variants.dir/fig06_spatial_variants.cc.o.d"
  "fig06_spatial_variants"
  "fig06_spatial_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_spatial_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
