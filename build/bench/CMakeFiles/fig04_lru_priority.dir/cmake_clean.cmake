file(REMOVE_RECURSE
  "CMakeFiles/fig04_lru_priority.dir/fig04_lru_priority.cc.o"
  "CMakeFiles/fig04_lru_priority.dir/fig04_lru_priority.cc.o.d"
  "fig04_lru_priority"
  "fig04_lru_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_lru_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
