# Empty dependencies file for fig04_lru_priority.
# This may be replaced when dependencies are built.
