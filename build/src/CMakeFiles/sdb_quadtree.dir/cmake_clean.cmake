file(REMOVE_RECURSE
  "CMakeFiles/sdb_quadtree.dir/quadtree/quadtree.cc.o"
  "CMakeFiles/sdb_quadtree.dir/quadtree/quadtree.cc.o.d"
  "libsdb_quadtree.a"
  "libsdb_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
