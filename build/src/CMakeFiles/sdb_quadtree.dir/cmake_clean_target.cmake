file(REMOVE_RECURSE
  "libsdb_quadtree.a"
)
