# Empty dependencies file for sdb_quadtree.
# This may be replaced when dependencies are built.
