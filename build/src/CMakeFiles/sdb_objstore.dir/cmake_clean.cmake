file(REMOVE_RECURSE
  "CMakeFiles/sdb_objstore.dir/objstore/object_store.cc.o"
  "CMakeFiles/sdb_objstore.dir/objstore/object_store.cc.o.d"
  "libsdb_objstore.a"
  "libsdb_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
