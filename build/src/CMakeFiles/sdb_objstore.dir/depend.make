# Empty dependencies file for sdb_objstore.
# This may be replaced when dependencies are built.
