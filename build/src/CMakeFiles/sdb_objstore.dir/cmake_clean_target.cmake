file(REMOVE_RECURSE
  "libsdb_objstore.a"
)
