file(REMOVE_RECURSE
  "CMakeFiles/sdb_zbtree.dir/zbtree/zbtree.cc.o"
  "CMakeFiles/sdb_zbtree.dir/zbtree/zbtree.cc.o.d"
  "CMakeFiles/sdb_zbtree.dir/zbtree/zcurve.cc.o"
  "CMakeFiles/sdb_zbtree.dir/zbtree/zcurve.cc.o.d"
  "libsdb_zbtree.a"
  "libsdb_zbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_zbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
