
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zbtree/zbtree.cc" "src/CMakeFiles/sdb_zbtree.dir/zbtree/zbtree.cc.o" "gcc" "src/CMakeFiles/sdb_zbtree.dir/zbtree/zbtree.cc.o.d"
  "/root/repo/src/zbtree/zcurve.cc" "src/CMakeFiles/sdb_zbtree.dir/zbtree/zcurve.cc.o" "gcc" "src/CMakeFiles/sdb_zbtree.dir/zbtree/zcurve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
