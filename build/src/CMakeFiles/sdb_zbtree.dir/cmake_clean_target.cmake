file(REMOVE_RECURSE
  "libsdb_zbtree.a"
)
