# Empty compiler generated dependencies file for sdb_zbtree.
# This may be replaced when dependencies are built.
