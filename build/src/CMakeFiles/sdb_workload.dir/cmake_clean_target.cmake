file(REMOVE_RECURSE
  "libsdb_workload.a"
)
