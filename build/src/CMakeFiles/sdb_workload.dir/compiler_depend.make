# Empty compiler generated dependencies file for sdb_workload.
# This may be replaced when dependencies are built.
