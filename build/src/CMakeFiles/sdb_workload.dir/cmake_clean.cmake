file(REMOVE_RECURSE
  "CMakeFiles/sdb_workload.dir/workload/data_generator.cc.o"
  "CMakeFiles/sdb_workload.dir/workload/data_generator.cc.o.d"
  "CMakeFiles/sdb_workload.dir/workload/dataset.cc.o"
  "CMakeFiles/sdb_workload.dir/workload/dataset.cc.o.d"
  "CMakeFiles/sdb_workload.dir/workload/query_generator.cc.o"
  "CMakeFiles/sdb_workload.dir/workload/query_generator.cc.o.d"
  "CMakeFiles/sdb_workload.dir/workload/session_generator.cc.o"
  "CMakeFiles/sdb_workload.dir/workload/session_generator.cc.o.d"
  "libsdb_workload.a"
  "libsdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
