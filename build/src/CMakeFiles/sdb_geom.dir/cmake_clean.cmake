file(REMOVE_RECURSE
  "CMakeFiles/sdb_geom.dir/geom/entry_aggregates.cc.o"
  "CMakeFiles/sdb_geom.dir/geom/entry_aggregates.cc.o.d"
  "CMakeFiles/sdb_geom.dir/geom/rect.cc.o"
  "CMakeFiles/sdb_geom.dir/geom/rect.cc.o.d"
  "libsdb_geom.a"
  "libsdb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
