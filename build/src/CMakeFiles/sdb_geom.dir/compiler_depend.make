# Empty compiler generated dependencies file for sdb_geom.
# This may be replaced when dependencies are built.
