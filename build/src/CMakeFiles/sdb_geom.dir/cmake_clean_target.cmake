file(REMOVE_RECURSE
  "libsdb_geom.a"
)
