file(REMOVE_RECURSE
  "libsdb_storage.a"
)
