# Empty compiler generated dependencies file for sdb_storage.
# This may be replaced when dependencies are built.
