file(REMOVE_RECURSE
  "CMakeFiles/sdb_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/sdb_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/sdb_storage.dir/storage/page.cc.o"
  "CMakeFiles/sdb_storage.dir/storage/page.cc.o.d"
  "libsdb_storage.a"
  "libsdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
