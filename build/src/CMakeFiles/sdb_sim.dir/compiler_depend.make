# Empty compiler generated dependencies file for sdb_sim.
# This may be replaced when dependencies are built.
