file(REMOVE_RECURSE
  "CMakeFiles/sdb_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/sdb_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/sdb_sim.dir/sim/report.cc.o"
  "CMakeFiles/sdb_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/sdb_sim.dir/sim/scenario.cc.o"
  "CMakeFiles/sdb_sim.dir/sim/scenario.cc.o.d"
  "CMakeFiles/sdb_sim.dir/sim/trace.cc.o"
  "CMakeFiles/sdb_sim.dir/sim/trace.cc.o.d"
  "CMakeFiles/sdb_sim.dir/sim/trace_analysis.cc.o"
  "CMakeFiles/sdb_sim.dir/sim/trace_analysis.cc.o.d"
  "libsdb_sim.a"
  "libsdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
