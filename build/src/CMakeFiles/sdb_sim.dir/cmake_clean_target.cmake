file(REMOVE_RECURSE
  "libsdb_sim.a"
)
