file(REMOVE_RECURSE
  "libsdb_rtree.a"
)
