
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/bulk_load.cc" "src/CMakeFiles/sdb_rtree.dir/rtree/bulk_load.cc.o" "gcc" "src/CMakeFiles/sdb_rtree.dir/rtree/bulk_load.cc.o.d"
  "/root/repo/src/rtree/node_view.cc" "src/CMakeFiles/sdb_rtree.dir/rtree/node_view.cc.o" "gcc" "src/CMakeFiles/sdb_rtree.dir/rtree/node_view.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/sdb_rtree.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/sdb_rtree.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/rtree/spatial_join.cc" "src/CMakeFiles/sdb_rtree.dir/rtree/spatial_join.cc.o" "gcc" "src/CMakeFiles/sdb_rtree.dir/rtree/spatial_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
