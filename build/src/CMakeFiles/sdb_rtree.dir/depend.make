# Empty dependencies file for sdb_rtree.
# This may be replaced when dependencies are built.
