file(REMOVE_RECURSE
  "CMakeFiles/sdb_rtree.dir/rtree/bulk_load.cc.o"
  "CMakeFiles/sdb_rtree.dir/rtree/bulk_load.cc.o.d"
  "CMakeFiles/sdb_rtree.dir/rtree/node_view.cc.o"
  "CMakeFiles/sdb_rtree.dir/rtree/node_view.cc.o.d"
  "CMakeFiles/sdb_rtree.dir/rtree/rtree.cc.o"
  "CMakeFiles/sdb_rtree.dir/rtree/rtree.cc.o.d"
  "CMakeFiles/sdb_rtree.dir/rtree/spatial_join.cc.o"
  "CMakeFiles/sdb_rtree.dir/rtree/spatial_join.cc.o.d"
  "libsdb_rtree.a"
  "libsdb_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
