
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer_manager.cc" "src/CMakeFiles/sdb_core.dir/core/buffer_manager.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/buffer_manager.cc.o.d"
  "/root/repo/src/core/policy_arc.cc" "src/CMakeFiles/sdb_core.dir/core/policy_arc.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_arc.cc.o.d"
  "/root/repo/src/core/policy_asb.cc" "src/CMakeFiles/sdb_core.dir/core/policy_asb.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_asb.cc.o.d"
  "/root/repo/src/core/policy_clock.cc" "src/CMakeFiles/sdb_core.dir/core/policy_clock.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_clock.cc.o.d"
  "/root/repo/src/core/policy_domain.cc" "src/CMakeFiles/sdb_core.dir/core/policy_domain.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_domain.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/CMakeFiles/sdb_core.dir/core/policy_factory.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_factory.cc.o.d"
  "/root/repo/src/core/policy_fifo.cc" "src/CMakeFiles/sdb_core.dir/core/policy_fifo.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_fifo.cc.o.d"
  "/root/repo/src/core/policy_gclock.cc" "src/CMakeFiles/sdb_core.dir/core/policy_gclock.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_gclock.cc.o.d"
  "/root/repo/src/core/policy_lru.cc" "src/CMakeFiles/sdb_core.dir/core/policy_lru.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_lru.cc.o.d"
  "/root/repo/src/core/policy_lru_k.cc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_k.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_k.cc.o.d"
  "/root/repo/src/core/policy_lru_priority.cc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_priority.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_priority.cc.o.d"
  "/root/repo/src/core/policy_lru_type.cc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_type.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_lru_type.cc.o.d"
  "/root/repo/src/core/policy_pin_levels.cc" "src/CMakeFiles/sdb_core.dir/core/policy_pin_levels.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_pin_levels.cc.o.d"
  "/root/repo/src/core/policy_slru.cc" "src/CMakeFiles/sdb_core.dir/core/policy_slru.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_slru.cc.o.d"
  "/root/repo/src/core/policy_spatial.cc" "src/CMakeFiles/sdb_core.dir/core/policy_spatial.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_spatial.cc.o.d"
  "/root/repo/src/core/policy_two_queue.cc" "src/CMakeFiles/sdb_core.dir/core/policy_two_queue.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/policy_two_queue.cc.o.d"
  "/root/repo/src/core/replacement_policy.cc" "src/CMakeFiles/sdb_core.dir/core/replacement_policy.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/replacement_policy.cc.o.d"
  "/root/repo/src/core/spatial_criterion.cc" "src/CMakeFiles/sdb_core.dir/core/spatial_criterion.cc.o" "gcc" "src/CMakeFiles/sdb_core.dir/core/spatial_criterion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
