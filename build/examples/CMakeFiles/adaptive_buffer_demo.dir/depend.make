# Empty dependencies file for adaptive_buffer_demo.
# This may be replaced when dependencies are built.
