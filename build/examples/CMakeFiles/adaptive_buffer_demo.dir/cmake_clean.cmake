file(REMOVE_RECURSE
  "CMakeFiles/adaptive_buffer_demo.dir/adaptive_buffer_demo.cc.o"
  "CMakeFiles/adaptive_buffer_demo.dir/adaptive_buffer_demo.cc.o.d"
  "adaptive_buffer_demo"
  "adaptive_buffer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_buffer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
