# Empty dependencies file for map_browser.
# This may be replaced when dependencies are built.
