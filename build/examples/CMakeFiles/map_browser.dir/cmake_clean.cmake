file(REMOVE_RECURSE
  "CMakeFiles/map_browser.dir/map_browser.cc.o"
  "CMakeFiles/map_browser.dir/map_browser.cc.o.d"
  "map_browser"
  "map_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
