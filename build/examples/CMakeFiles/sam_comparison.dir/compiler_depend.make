# Empty compiler generated dependencies file for sam_comparison.
# This may be replaced when dependencies are built.
