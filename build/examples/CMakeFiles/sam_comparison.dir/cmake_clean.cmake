file(REMOVE_RECURSE
  "CMakeFiles/sam_comparison.dir/sam_comparison.cc.o"
  "CMakeFiles/sam_comparison.dir/sam_comparison.cc.o.d"
  "sam_comparison"
  "sam_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
