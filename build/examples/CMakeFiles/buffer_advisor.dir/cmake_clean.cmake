file(REMOVE_RECURSE
  "CMakeFiles/buffer_advisor.dir/buffer_advisor.cc.o"
  "CMakeFiles/buffer_advisor.dir/buffer_advisor.cc.o.d"
  "buffer_advisor"
  "buffer_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
