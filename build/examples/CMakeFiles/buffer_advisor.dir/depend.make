# Empty dependencies file for buffer_advisor.
# This may be replaced when dependencies are built.
