# Empty compiler generated dependencies file for exact_geometry.
# This may be replaced when dependencies are built.
