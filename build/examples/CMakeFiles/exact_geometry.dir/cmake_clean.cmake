file(REMOVE_RECURSE
  "CMakeFiles/exact_geometry.dir/exact_geometry.cc.o"
  "CMakeFiles/exact_geometry.dir/exact_geometry.cc.o.d"
  "exact_geometry"
  "exact_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
