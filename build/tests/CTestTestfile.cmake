# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_manager_test[1]_include.cmake")
include("/root/repo/build/tests/policy_basic_test[1]_include.cmake")
include("/root/repo/build/tests/policy_lru_k_test[1]_include.cmake")
include("/root/repo/build/tests/policy_spatial_test[1]_include.cmake")
include("/root/repo/build/tests/policy_slru_test[1]_include.cmake")
include("/root/repo/build/tests/policy_asb_test[1]_include.cmake")
include("/root/repo/build/tests/policy_factory_test[1]_include.cmake")
include("/root/repo/build/tests/node_view_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_property_test[1]_include.cmake")
include("/root/repo/build/tests/bulk_load_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_join_test[1]_include.cmake")
include("/root/repo/build/tests/object_store_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/policy_extra_test[1]_include.cmake")
include("/root/repo/build/tests/zcurve_test[1]_include.cmake")
include("/root/repo/build/tests/zbtree_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/policy_arc_test[1]_include.cmake")
include("/root/repo/build/tests/quadtree_test[1]_include.cmake")
include("/root/repo/build/tests/policy_contract_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_fuzz_test[1]_include.cmake")
