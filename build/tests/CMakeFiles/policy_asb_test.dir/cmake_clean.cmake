file(REMOVE_RECURSE
  "CMakeFiles/policy_asb_test.dir/policy_asb_test.cc.o"
  "CMakeFiles/policy_asb_test.dir/policy_asb_test.cc.o.d"
  "policy_asb_test"
  "policy_asb_test.pdb"
  "policy_asb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_asb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
