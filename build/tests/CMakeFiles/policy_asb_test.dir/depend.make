# Empty dependencies file for policy_asb_test.
# This may be replaced when dependencies are built.
