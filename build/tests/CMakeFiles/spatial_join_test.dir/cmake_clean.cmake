file(REMOVE_RECURSE
  "CMakeFiles/spatial_join_test.dir/spatial_join_test.cc.o"
  "CMakeFiles/spatial_join_test.dir/spatial_join_test.cc.o.d"
  "spatial_join_test"
  "spatial_join_test.pdb"
  "spatial_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
