file(REMOVE_RECURSE
  "CMakeFiles/policy_arc_test.dir/policy_arc_test.cc.o"
  "CMakeFiles/policy_arc_test.dir/policy_arc_test.cc.o.d"
  "policy_arc_test"
  "policy_arc_test.pdb"
  "policy_arc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_arc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
