# Empty dependencies file for policy_arc_test.
# This may be replaced when dependencies are built.
