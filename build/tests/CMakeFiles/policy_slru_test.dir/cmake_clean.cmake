file(REMOVE_RECURSE
  "CMakeFiles/policy_slru_test.dir/policy_slru_test.cc.o"
  "CMakeFiles/policy_slru_test.dir/policy_slru_test.cc.o.d"
  "policy_slru_test"
  "policy_slru_test.pdb"
  "policy_slru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_slru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
