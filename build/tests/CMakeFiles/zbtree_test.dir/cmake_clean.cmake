file(REMOVE_RECURSE
  "CMakeFiles/zbtree_test.dir/zbtree_test.cc.o"
  "CMakeFiles/zbtree_test.dir/zbtree_test.cc.o.d"
  "zbtree_test"
  "zbtree_test.pdb"
  "zbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
