# Empty dependencies file for zbtree_test.
# This may be replaced when dependencies are built.
