file(REMOVE_RECURSE
  "CMakeFiles/policy_contract_test.dir/policy_contract_test.cc.o"
  "CMakeFiles/policy_contract_test.dir/policy_contract_test.cc.o.d"
  "policy_contract_test"
  "policy_contract_test.pdb"
  "policy_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
