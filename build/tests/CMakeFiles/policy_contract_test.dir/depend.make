# Empty dependencies file for policy_contract_test.
# This may be replaced when dependencies are built.
