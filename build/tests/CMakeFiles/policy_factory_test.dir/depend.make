# Empty dependencies file for policy_factory_test.
# This may be replaced when dependencies are built.
