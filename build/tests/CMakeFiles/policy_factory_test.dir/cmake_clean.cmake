file(REMOVE_RECURSE
  "CMakeFiles/policy_factory_test.dir/policy_factory_test.cc.o"
  "CMakeFiles/policy_factory_test.dir/policy_factory_test.cc.o.d"
  "policy_factory_test"
  "policy_factory_test.pdb"
  "policy_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
