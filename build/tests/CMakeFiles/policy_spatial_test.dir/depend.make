# Empty dependencies file for policy_spatial_test.
# This may be replaced when dependencies are built.
