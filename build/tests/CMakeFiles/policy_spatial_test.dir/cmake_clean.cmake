file(REMOVE_RECURSE
  "CMakeFiles/policy_spatial_test.dir/policy_spatial_test.cc.o"
  "CMakeFiles/policy_spatial_test.dir/policy_spatial_test.cc.o.d"
  "policy_spatial_test"
  "policy_spatial_test.pdb"
  "policy_spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
