file(REMOVE_RECURSE
  "CMakeFiles/node_view_test.dir/node_view_test.cc.o"
  "CMakeFiles/node_view_test.dir/node_view_test.cc.o.d"
  "node_view_test"
  "node_view_test.pdb"
  "node_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
