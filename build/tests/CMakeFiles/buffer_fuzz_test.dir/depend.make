# Empty dependencies file for buffer_fuzz_test.
# This may be replaced when dependencies are built.
