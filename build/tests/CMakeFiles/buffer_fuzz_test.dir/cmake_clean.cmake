file(REMOVE_RECURSE
  "CMakeFiles/buffer_fuzz_test.dir/buffer_fuzz_test.cc.o"
  "CMakeFiles/buffer_fuzz_test.dir/buffer_fuzz_test.cc.o.d"
  "buffer_fuzz_test"
  "buffer_fuzz_test.pdb"
  "buffer_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
