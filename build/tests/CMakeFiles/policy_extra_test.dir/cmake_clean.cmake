file(REMOVE_RECURSE
  "CMakeFiles/policy_extra_test.dir/policy_extra_test.cc.o"
  "CMakeFiles/policy_extra_test.dir/policy_extra_test.cc.o.d"
  "policy_extra_test"
  "policy_extra_test.pdb"
  "policy_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
