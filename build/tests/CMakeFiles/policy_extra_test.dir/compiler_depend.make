# Empty compiler generated dependencies file for policy_extra_test.
# This may be replaced when dependencies are built.
