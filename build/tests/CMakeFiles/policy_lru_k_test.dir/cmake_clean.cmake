file(REMOVE_RECURSE
  "CMakeFiles/policy_lru_k_test.dir/policy_lru_k_test.cc.o"
  "CMakeFiles/policy_lru_k_test.dir/policy_lru_k_test.cc.o.d"
  "policy_lru_k_test"
  "policy_lru_k_test.pdb"
  "policy_lru_k_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_lru_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
