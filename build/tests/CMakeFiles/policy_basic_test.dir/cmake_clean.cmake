file(REMOVE_RECURSE
  "CMakeFiles/policy_basic_test.dir/policy_basic_test.cc.o"
  "CMakeFiles/policy_basic_test.dir/policy_basic_test.cc.o.d"
  "policy_basic_test"
  "policy_basic_test.pdb"
  "policy_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
