
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bulk_load_test.cc" "tests/CMakeFiles/bulk_load_test.dir/bulk_load_test.cc.o" "gcc" "tests/CMakeFiles/bulk_load_test.dir/bulk_load_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_zbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
